//! E6 — staggered-initiation latency (§3.4).
//!
//! The pipelined buffer admits one wave initiation per cycle, so packet
//! heads arriving in the same cycle are served staggered. The paper's
//! analysis: the expected cut-through latency increase is
//! `(p/4)·(n−1)/n` clock cycles at link load `p` — "for 40 % load, this
//! amounts to one tenth of a clock cycle, i.e. negligible". We measure
//! the mean head latency of the behavioral switch over a load sweep and
//! compare the excess over the uncontended minimum (2 cycles) with the
//! formula.

use crate::{sweep, table};
use simkernel::SplitMix64;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;

/// One (n, p) measurement.
#[derive(Debug, Clone, Copy)]
pub struct E6Row {
    /// Switch size.
    pub n: usize,
    /// Link load.
    pub load: f64,
    /// Measured mean extra cut-through latency (cycles beyond 2).
    pub measured_extra: f64,
    /// Paper's formula `(p/4)·(n−1)/n`.
    pub formula: f64,
}

/// Paper formula.
pub fn formula(p: f64, n: usize) -> f64 {
    (p / 4.0) * (n as f64 - 1.0) / n as f64
}

/// Per-idle-cycle start probability giving long-run link load `p` on a
/// link whose packets occupy `s` word cycles.
fn start_prob(p: f64, s: usize) -> f64 {
    if p >= 1.0 {
        1.0
    } else {
        p / (p + s as f64 * (1.0 - p))
    }
}

/// The arrival schedule at load `p`: each input is a renewal process —
/// free for a geometric number of cycles (the same per-idle-cycle start
/// probability `q` a dense Bernoulli drive loop would use), then busy
/// for the `s`-cycle packet. Sampling the gaps directly costs
/// O(packets), not O(cycles × n); each input draws from its own
/// seed-split stream, so the schedule is independent of input order.
/// Returns (cycle, input, destination) sorted by (cycle, input).
fn arrival_schedule(
    n: usize,
    s: usize,
    p: f64,
    cycles: u64,
    seed: u64,
) -> Vec<(u64, usize, usize)> {
    let q = start_prob(p, s);
    let mut sched = Vec::new();
    for i in 0..n {
        let mut rng = SplitMix64::stream(seed, i as u64);
        let mut t = 0u64;
        loop {
            t += rng.geometric(q);
            if t >= cycles {
                break;
            }
            sched.push((t, i, rng.below_usize(n)));
            t += s as u64;
        }
    }
    sched.sort_unstable_by_key(|&(t, i, _)| (t, i));
    sched
}

/// The §3.4 statistic: mean extra head latency of packets that found
/// their output idle, over departures past warmup.
fn extra_latency(sw: &BehavioralSwitch, cycles: u64, n: usize, p: f64) -> f64 {
    let warmup = cycles / 5;
    let (mut sum, mut count) = (0.0, 0u64);
    // §3.4 analyzes the cut-through latency of packets that would have
    // departed immediately (output idle at arrival): any excess over the
    // uncontended 2 cycles is staggered-initiation delay, not ordinary
    // output queueing. Restrict the sample accordingly.
    for d in sw.departures() {
        if d.birth >= warmup && d.output_was_idle {
            sum += d.head_latency() as f64 - 2.0;
            count += 1;
        }
    }
    assert!(count > 100, "not enough samples at n={n} p={p}");
    sum / count as f64
}

/// Measure the mean extra head latency at (n, p).
///
/// Event-driven: the arrival schedule is sampled directly (geometric
/// free gaps, O(packets)), then the model replays it with the
/// event-horizon kernel fast-forwarding the arrival-free spans.
/// Departure streams are bit-identical to a dense per-cycle replay of
/// the same schedule ([`measure_dense`]); only wall time changes (most
/// dramatic at low load, where most cycles are idle).
pub fn measure(n: usize, p: f64, cycles: u64, seed: u64) -> f64 {
    let cfg = SwitchConfig::symmetric(n, 4 * n.max(8));
    let s = cfg.stages();
    let schedule = arrival_schedule(n, s, p, cycles, seed);
    let mut sw = BehavioralSwitch::new(cfg);
    let idle: Vec<Option<usize>> = vec![None; n];
    let mut arr = vec![None; n];
    let mut k = 0;
    while k < schedule.len() {
        let t = schedule[k].0;
        simkernel::horizon::advance_to(&mut sw, t, |m| {
            m.tick(&idle);
        });
        arr.fill(None);
        while k < schedule.len() && schedule[k].0 == t {
            arr[schedule[k].1] = Some(schedule[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    simkernel::horizon::advance_to(&mut sw, cycles, |m| {
        m.tick(&idle);
    });
    extra_latency(&sw, cycles, n, p)
}

/// Dense-stepping oracle for [`measure`]: replays the *same* arrival
/// schedule one `tick` per word clock. The unit test below asserts the
/// two produce bit-identical statistics — the fast path may change wall
/// time only, never a departure cycle.
pub fn measure_dense(n: usize, p: f64, cycles: u64, seed: u64) -> f64 {
    let cfg = SwitchConfig::symmetric(n, 4 * n.max(8));
    let s = cfg.stages();
    let schedule = arrival_schedule(n, s, p, cycles, seed);
    let mut sw = BehavioralSwitch::new(cfg);
    let mut arr = vec![None; n];
    let mut k = 0;
    for t in 0..cycles {
        arr.fill(None);
        while k < schedule.len() && schedule[k].0 == t {
            arr[schedule[k].1] = Some(schedule[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    extra_latency(&sw, cycles, n, p)
}

/// The pre-fast-forward implementation of this experiment: per-cycle
/// Bernoulli draws fused with dense stepping, exactly as the drive loop
/// ran before the event-horizon kernel existed. Kept as the wall-time
/// "before" side of the comparison `expt bench` tracks (it samples the
/// same renewal process, so its statistic agrees with [`measure`] to
/// sampling noise, but it must pay for both the O(cycles × n) draws and
/// the per-cycle ticks).
pub fn measure_reference(n: usize, p: f64, cycles: u64, seed: u64) -> f64 {
    let cfg = SwitchConfig::symmetric(n, 4 * n.max(8));
    let s = cfg.stages();
    let q = start_prob(p, s);
    let mut sw = BehavioralSwitch::new(cfg);
    let mut rng = SplitMix64::new(seed);
    let mut arr = vec![None; n];
    for _ in 0..cycles {
        for (i, a) in arr.iter_mut().enumerate() {
            *a = (sw.input_free(i) && rng.chance(q)).then(|| rng.below_usize(n));
        }
        sw.tick(&arr);
    }
    extra_latency(&sw, cycles, n, p)
}

/// Sweep the `sizes × loads` grid, one parallel point per (n, p).
pub fn rows(quick: bool) -> Vec<E6Row> {
    let cycles = if quick { 80_000 } else { 400_000 };
    let sizes: &[usize] = if quick { &[4, 8] } else { &[2, 4, 8, 16] };
    let mut points = Vec::new();
    for &n in sizes {
        for &p in &[0.1, 0.2, 0.4] {
            points.push((n, p));
        }
    }
    sweep::map(&points, |&(n, p)| E6Row {
        n,
        load: p,
        measured_extra: measure(n, p, cycles, 0xE6),
        formula: formula(p, n),
    })
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let body: Vec<Vec<String>> = rows(quick)
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}", r.load),
                format!("{:.4}", r.measured_extra),
                format!("{:.4}", r.formula),
            ]
        })
        .collect();
    let mut s = table::render(
        "E6: staggered-initiation cut-through latency increase, measured vs (p/4)(n-1)/n (paper §3.4)",
        &["n", "load", "measured", "formula"],
        &body,
    );
    s.push_str(
        "\nAt 40% load the increase is about a tenth of a cycle — the paper's\n\
         'negligible'. (Measured values include second-order queueing effects the\n\
         first-order formula ignores, so they sit slightly above it at higher load.)\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_forward_replay_matches_dense_replay() {
        // The fast-forwarding `measure` must be *bit*-identical to a
        // dense per-cycle replay of the same arrival schedule: same
        // departure stream, same float accumulation. The pre-PR fused
        // loop samples the same renewal process from a different stream,
        // so it agrees statistically, not bitwise.
        let (n, p, cycles, seed) = (4usize, 0.15f64, 30_000u64, 0xD5u64);
        let dense = measure_dense(n, p, cycles, seed);
        let fast = measure(n, p, cycles, seed);
        let reference = measure_reference(n, p, cycles, seed);
        assert!(
            (reference - fast).abs() < 0.1,
            "pre-fast-forward reference {reference} vs event-driven {fast}"
        );
        assert_eq!(
            dense.to_bits(),
            fast.to_bits(),
            "dense {dense} vs fast-forward {fast}"
        );
    }

    #[test]
    fn formula_values() {
        assert!((formula(0.4, 1000) - 0.0999).abs() < 1e-3, "≈0.1 @ 40%");
        assert_eq!(formula(0.4, 1), 0.0, "no conflicts with one input");
    }

    #[test]
    fn measured_tracks_formula_at_light_load() {
        let m = measure(8, 0.2, 60_000, 3);
        let f = formula(0.2, 8);
        // First-order agreement: within 0.06 cycles absolute.
        assert!(
            (m - f).abs() < 0.06,
            "measured {m} vs formula {f} at n=8 p=0.2"
        );
    }

    #[test]
    fn formula_holds_across_the_size_grid() {
        // §3.4 coverage grid: the measured staggered-initiation penalty
        // must match `(p/4)(n-1)/n` across switch sizes, not just at the
        // single point the light-load test pins. At 20% load the
        // first-order formula is tight; at 40% second-order queueing
        // (which the formula ignores) pushes the measurement above it,
        // so that bound is one-sided plus slack.
        for &n in &[4usize, 8, 16] {
            let m = measure(n, 0.2, 60_000, 0x34 + n as u64);
            let f = formula(0.2, n);
            assert!(
                (m - f).abs() < 0.08,
                "n={n} p=0.2: measured {m} vs formula {f}"
            );
            let m4 = measure(n, 0.4, 60_000, 0x34 + n as u64);
            let f4 = formula(0.4, n);
            assert!(
                m4 > f4 - 0.05 && m4 < f4 + 0.3,
                "n={n} p=0.4: measured {m4} vs formula {f4}"
            );
        }
    }

    #[test]
    fn extra_latency_grows_with_load() {
        let lo = measure(8, 0.1, 60_000, 4);
        let hi = measure(8, 0.4, 60_000, 4);
        assert!(
            hi > lo,
            "staggering delay must grow with load: {lo} vs {hi}"
        );
    }

    #[test]
    fn negligible_at_forty_percent() {
        // The paper's headline: ~0.1 cycles at 40% load.
        let m = measure(16, 0.4, 60_000, 5);
        assert!(m < 0.35, "must be a fraction of a cycle, got {m}");
    }
}
