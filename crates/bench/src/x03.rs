//! X3 (extension) — word-level organization shoot-out.
//!
//! The §3.2/§5.2 comparison run as *hardware behavior* rather than area
//! arithmetic: identical word schedules through the pipelined switch
//! (fig. 4) and the wide-memory switch (fig. 3), with and without the
//! wide memory's cut-through crossbar; mean head latency and the
//! machinery each needs to avoid loss.

use crate::{sweep, table};
use simkernel::cell::Packet;
use simkernel::SplitMix64;
use switch_core::config::SwitchConfig;
use switch_core::rtl::{OutputCollector, PipelinedSwitch};
use switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// Result of one organization's run.
#[derive(Debug, Clone)]
pub struct X3Row {
    /// Organization label.
    pub org: &'static str,
    /// Packets delivered.
    pub delivered: usize,
    /// Mean first-word cycle (lower = faster; identical workloads).
    pub mean_first: f64,
    /// Drops/overruns.
    pub lost: u64,
    /// Extra hardware the organization needed (qualitative, from the
    /// model's structure).
    pub hardware: &'static str,
}

/// Shared word schedule.
#[allow(clippy::needless_range_loop)]
fn schedule(n: usize, s: usize, cycles: u64, load: f64, seed: u64) -> Vec<Vec<Option<u64>>> {
    let mut rng = SplitMix64::new(seed);
    let mut wires = vec![vec![None; n]; cycles as usize];
    let q = load / (load + s as f64 * (1.0 - load));
    let mut id = 1u64;
    for i in 0..n {
        let mut t = 0usize;
        while t + s <= cycles as usize {
            if rng.chance(q) {
                let p = Packet::synth(id, i, rng.below_usize(n), s, t as u64);
                id += 1;
                for (k, w) in p.words.iter().enumerate() {
                    wires[t + k][i] = Some(*w);
                }
                t += s;
            } else {
                t += 1;
            }
        }
    }
    wires
}

/// Run all three organizations on the same schedule, one parallel sweep
/// point per organization (they share the read-only word schedule).
pub fn rows(quick: bool) -> Vec<X3Row> {
    let n = 4;
    let s = 2 * n;
    let cycles = if quick { 6_000 } else { 40_000 };
    let wires = schedule(n, s, cycles, 0.5, 0x33);
    let mean_first = |pkts: &[switch_core::rtl::DeliveredPacket]| {
        pkts.iter().map(|d| d.first_cycle).sum::<u64>() as f64 / pkts.len().max(1) as f64
    };

    const ORGS: [(&str, Option<bool>, &str); 3] = [
        (
            "pipelined (fig 4, paper)",
            None,
            "single latch row, no bypass",
        ),
        (
            "wide + cut-through xbar (fig 3)",
            Some(true),
            "double latch rows + bypass xbar",
        ),
        ("wide, no bypass", Some(false), "double latch rows"),
    ];
    sweep::map(&ORGS, |&(org, crossbar, hardware)| {
        let (pkts, lost) = match crossbar {
            None => {
                let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(n, 64));
                let mut col = OutputCollector::new(n, s);
                let idle = vec![None; n];
                for row in &wires {
                    let now = sw.now();
                    let o = sw.tick(row);
                    col.observe(now, o);
                }
                let mut guard = 0;
                while !sw.is_quiescent() && guard < 10_000 {
                    let now = sw.now();
                    let o = sw.tick(&idle);
                    col.observe(now, o);
                    guard += 1;
                }
                let c = sw.counters();
                (col.take(), c.dropped_buffer_full + c.latch_overruns)
            }
            Some(xbar) => {
                let mut cfg = WideSwitchConfig::fig3(n, 64);
                cfg.cut_through_crossbar = xbar;
                let mut sw = WideMemorySwitchRtl::new(cfg);
                let mut col = OutputCollector::new(n, s);
                let idle = vec![None; n];
                for row in &wires {
                    let now = sw.now();
                    let o = sw.tick(row);
                    col.observe(now, o);
                }
                let mut guard = 0;
                while !sw.is_quiescent() && guard < 10_000 {
                    let now = sw.now();
                    let o = sw.tick(&idle);
                    col.observe(now, o);
                    guard += 1;
                }
                let c = sw.counters();
                (col.take(), c.dropped_buffer_full + c.latch_overruns)
            }
        };
        X3Row {
            org,
            delivered: pkts.len(),
            mean_first: mean_first(&pkts),
            lost,
            hardware,
        }
    })
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let base = rows[0].mean_first;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.org.to_string(),
                r.delivered.to_string(),
                format!("{:.1}", r.mean_first),
                format!("{:+.1}", r.mean_first - base),
                r.lost.to_string(),
                r.hardware.to_string(),
            ]
        })
        .collect();
    let mut s = table::render(
        "X3 (extension): identical word schedules through the fig-3 and fig-4 organizations (4x4, load 0.5)",
        &["organization", "delivered", "mean 1st-word cyc", "vs pipelined", "lost", "extra hardware"],
        &body,
    );
    s.push_str(
        "\nThe pipelined organization matches the wide memory WITH its bypass crossbar\n\
         on latency while needing neither the crossbar nor the second latch row —\n\
         §3.2's argument as a head-to-head run (silicon priced in E13).\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_conserve() {
        let rows = rows(true);
        assert_eq!(rows[0].delivered, rows[1].delivered);
        assert_eq!(rows[0].delivered, rows[2].delivered);
        assert!(rows.iter().all(|r| r.lost == 0));
    }

    #[test]
    fn pipelined_fastest_or_tied() {
        let rows = rows(true);
        assert!(rows[0].mean_first <= rows[1].mean_first + 1.0);
        assert!(
            rows[2].mean_first > rows[0].mean_first + 2.0,
            "no-bypass pays"
        );
    }
}
