//! E11 — Telegraphos III headline numbers (§4.4, fig. 8): 16 Gb/s,
//! 64 Kbit full-custom pipelined buffer, plus the full-custom vs
//! standard-cell "factor of 22".

use crate::e08::functional_run;
use crate::table;
use vlsimodel::periph::{peripheral_area_mm2, Organization};
use vlsimodel::tech::Technology;
use vlsimodel::telegraphos::Prototype;

/// The §4.4 comparison: full-custom 8×8 vs standard-cell 4×4.
#[derive(Debug, Clone, Copy)]
pub struct Factor22 {
    /// Links ratio (8×8 vs 4×4) = 2.
    pub links: f64,
    /// Clock ratio (40 ns / 16 ns) = 2.5.
    pub clock: f64,
    /// Peripheral area ratio (41 / 9) ≈ 4.5.
    pub area: f64,
}

impl Factor22 {
    /// Compute from the model.
    pub fn compute() -> Self {
        let fc = Technology::es2_100_full_custom();
        let sc = Technology::es2_100_std_cell();
        let fc_area = peripheral_area_mm2(Organization::Pipelined, 8, 16, 256, &fc);
        let sc_area = peripheral_area_mm2(Organization::Pipelined, 4, 16, 256, &sc);
        Factor22 {
            links: 8.0 / 4.0,
            clock: sc.cycle_worst_ns / fc.cycle_worst_ns,
            area: sc_area / fc_area,
        }
    }

    /// The combined speed×capacity×area factor (paper: "approximately a
    /// factor of 22").
    pub fn combined(&self) -> f64 {
        self.links * self.clock * self.area
    }
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let p = Prototype::telegraphos_iii();
    let fc = Technology::es2_100_full_custom();
    let periph = peripheral_area_mm2(Organization::Pipelined, 8, 16, 256, &fc);
    let f = Factor22::compute();
    let cycles = if quick { 5_000 } else { 50_000 };
    let (delivered, intact, overruns) = functional_run(&p, 0.9, cycles, 0xE11);
    let body = vec![
        vec!["links".into(), "8 in + 8 out".into(), "8+8".into()],
        vec![
            "buffer capacity".into(),
            format!(
                "{} Kbit ({} pkts x {} b)",
                p.capacity_bits() / 1024,
                256,
                256
            ),
            "64 Kbit".into(),
        ],
        vec![
            "worst-case cycle".into(),
            format!("{} ns", fc.cycle_worst_ns),
            "16 ns".into(),
        ],
        vec![
            "per-link rate (worst)".into(),
            format!("{:.1} Gb/s", p.link_gbps_worst()),
            "1 Gb/s".into(),
        ],
        vec![
            "per-link rate (typ)".into(),
            format!("{:.1} Gb/s", p.link_gbps_typ()),
            "1.6 Gb/s".into(),
        ],
        vec![
            "aggregate".into(),
            format!("{:.0} Gb/s", p.aggregate_gbps_worst()),
            "16 Gb/s (fig 8)".into(),
        ],
        vec![
            "peripheral area".into(),
            format!("{periph:.1} mm2"),
            "~9 mm2".into(),
        ],
        vec![
            "fc vs sc factor".into(),
            format!(
                "{:.1} (links {:.0}x, clock {:.1}x, area {:.1}x)",
                f.combined(),
                f.links,
                f.clock,
                f.area
            ),
            "~22 (2 x 2.5 x 4.5)".into(),
        ],
    ];
    let mut s = table::render(
        "E11: Telegraphos III — 1.0um full-custom pipelined buffer (paper §4.4, fig 8)",
        &["quantity", "model", "paper"],
        &body,
    );
    s.push_str(&format!(
        "\nFunctional RTL run at the 8x8x16-stage geometry, load 0.9: {delivered}\n\
         packets delivered, payloads intact: {intact}, latch overruns: {overruns}.\n",
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_22_reproduced() {
        let f = Factor22::compute();
        assert!((f.links - 2.0).abs() < 1e-9);
        assert!((f.clock - 2.5).abs() < 1e-9);
        assert!((f.area - 4.5).abs() < 0.5, "area factor {}", f.area);
        assert!(
            (f.combined() - 22.0).abs() < 3.0,
            "combined factor {}",
            f.combined()
        );
    }
}
