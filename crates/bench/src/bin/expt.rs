//! `expt` — regenerate the paper's tables and figures.
//!
//! ```text
//! expt <id>...      run specific experiments (e1..e19, x1..x5)
//! expt all          run everything
//!   --policy P      restrict e18 to one buffer-sharing policy
//!                   (static | dt | pushout | occamy | bshare)
//! expt fuzz         differential conformance fuzz campaign
//!   --seeds N       campaign width (default 256)
//!   --base 0xHEX    base seed (default: the canonical campaign seed)
//! expt bench        perf-regression harness; writes BENCH_core.json
//!   --gate          compare against the committed BENCH_core.json
//!                   baseline instead of overwriting it
//! expt trace <id>   run e5/e6 with telemetry attached (see DESIGN.md §10)
//!   --vcd PATH      write the probe stream as a VCD waveform
//!   --metrics PATH  write the metrics pipeline's JSON
//!   --last N        flight-recorder window (default 4096 events)
//!   --smoke         validate the exports, write nothing
//! expt --quick ...  shrink run lengths (CI-sized)
//! expt --smoke ...  shrink campaign grids below --quick (determinism
//!                   cross-checks re-run experiments several times)
//! expt --jobs N     sweep-engine worker count (default: all cores)
//! expt --seq        fully sequential (same as --jobs 1)
//! expt --watchdog N override every drain-loop budget with N cycles and
//!                   exit nonzero (with a message) if any drain expires
//! expt --list       list experiments
//! ```
//!
//! Experiment grids run through the deterministic parallel engine in
//! `bench_harness::sweep`; output is bit-identical for every `--jobs`
//! value. Running `all` also writes `BENCH_sweeps.json` (wall-clock,
//! points/sec, and event-horizon skip efficiency per experiment) to the
//! current directory.

use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let smoke = args.iter().any(|a| a == "--smoke");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let seq = args.iter().any(|a| a == "--seq");
    let mut jobs: Option<usize> = None;
    let mut seeds: Option<u64> = None;
    let mut base: Option<u64> = None;
    let mut vcd_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut last: Option<usize> = None;
    let mut watchdog: Option<u64> = None;
    let mut policy: Option<conformance::PolicyKind> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seeds" {
            let v = it.next().map(|s| s.as_str()).unwrap_or("");
            match v.parse::<u64>() {
                Ok(n) if n >= 1 => seeds = Some(n),
                _ => {
                    eprintln!("--seeds needs a positive integer, got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--base" {
            let v = it.next().map(|s| s.as_str()).unwrap_or("");
            let parsed = v
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| v.parse::<u64>());
            match parsed {
                Ok(n) => base = Some(n),
                _ => {
                    eprintln!("--base needs an integer (decimal or 0xHEX), got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--jobs" || a == "-j" {
            let v = it.next().map(|s| s.as_str()).unwrap_or("");
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer, got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--vcd" {
            match it.next() {
                Some(p) if !p.starts_with('-') => vcd_path = Some(p.clone()),
                _ => {
                    eprintln!("--vcd needs an output path");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--metrics" {
            match it.next() {
                Some(p) if !p.starts_with('-') => metrics_path = Some(p.clone()),
                _ => {
                    eprintln!("--metrics needs an output path");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--last" {
            let v = it.next().map(|s| s.as_str()).unwrap_or("");
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => last = Some(n),
                _ => {
                    eprintln!("--last needs a positive integer, got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--policy" {
            let v = it.next().map(|s| s.as_str()).unwrap_or("");
            match conformance::PolicyKind::parse(v) {
                Some(p) => policy = Some(p),
                None => {
                    eprintln!("--policy needs one of static|dt|pushout|occamy|bshare, got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--watchdog" {
            let v = it.next().map(|s| s.as_str()).unwrap_or("");
            match v.parse::<u64>() {
                Ok(n) if n >= 1 => watchdog = Some(n),
                _ => {
                    eprintln!("--watchdog needs a positive cycle count, got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer, got '{v}'");
                    return ExitCode::from(2);
                }
            }
        } else if !a.starts_with('-') {
            ids.push(a.to_lowercase());
        }
    }
    if seq && jobs.map(|j| j > 1) == Some(true) {
        eprintln!("--seq contradicts --jobs {}", jobs.unwrap());
        return ExitCode::from(2);
    }
    bench_harness::sweep::set_jobs(if seq { 1 } else { jobs.unwrap_or(0) });
    bench_harness::sweep::set_smoke(smoke);
    if policy.is_some() && !ids.iter().any(|i| i == "e18" || i == "all") {
        eprintln!("--policy only applies to 'expt e18'");
        return ExitCode::from(2);
    }
    bench_harness::e18::set_policy_filter(policy);
    if let Some(n) = watchdog {
        simkernel::watchdog::set_limit(n);
    }
    // Snapshot the expiry ledger so the exit-code decision below reports
    // only drains that hung during *this* invocation.
    let wd_baseline = simkernel::watchdog::expiries();
    let watchdog_verdict = move || -> Result<(), ExitCode> {
        let Some(limit) = watchdog else {
            return Ok(());
        };
        let hung = simkernel::watchdog::expiries_since(wd_baseline);
        if hung == 0 {
            return Ok(());
        }
        eprintln!(
            "[watchdog: {hung} drain{} failed to reach quiescence under the \
             {limit}-cycle budget (escalation included); results above are \
             complete but the run is marked failed]",
            if hung == 1 { "" } else { "s" }
        );
        Err(ExitCode::FAILURE)
    };

    if ids.iter().any(|i| i == "bench") {
        if ids.len() > 1 {
            eprintln!("'bench' is a standalone harness; drop the other ids");
            return ExitCode::from(2);
        }
        let gate = args.iter().any(|a| a == "--gate");
        let report = bench_harness::perf::measure(quick);
        print!("{}", bench_harness::perf::render(&report));
        if gate {
            let path = "BENCH_core.json";
            let Ok(committed) = std::fs::read_to_string(path) else {
                eprintln!("[--gate: no committed {path} baseline found]");
                return ExitCode::FAILURE;
            };
            let Some(baseline) = bench_harness::perf::parse_baseline(&committed) else {
                eprintln!("[--gate: committed {path} is not parseable]");
                return ExitCode::FAILURE;
            };
            let violations = bench_harness::perf::gate(&report, &baseline);
            return if violations.is_empty() {
                println!("[gate: within tolerance of committed {path}]");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("[gate violation: {v}]");
                }
                ExitCode::FAILURE
            };
        }
        let path = "BENCH_core.json";
        return match std::fs::write(path, bench_harness::perf::to_json(&report)) {
            Ok(()) => {
                eprintln!("[wrote {path}]");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[could not write {path}: {e}]");
                ExitCode::FAILURE
            }
        };
    }
    if args.iter().any(|a| a == "--gate") {
        eprintln!("--gate only applies to 'expt bench'");
        return ExitCode::from(2);
    }

    if ids.iter().any(|i| i == "trace") {
        let others: Vec<&String> = ids.iter().filter(|i| i.as_str() != "trace").collect();
        if others.len() != 1 {
            eprintln!(
                "usage: expt trace <e5|e6> [--vcd PATH] [--metrics PATH] [--last N] [--smoke]"
            );
            return ExitCode::from(2);
        }
        return match bench_harness::tracecmd::run(others[0], last) {
            Ok(out) => {
                print!("{}", out.report);
                if smoke {
                    println!("[trace --smoke: VCD and metrics exports validated]");
                } else {
                    if let Some(p) = &vcd_path {
                        if let Err(e) = std::fs::write(p, &out.vcd) {
                            eprintln!("[could not write {p}: {e}]");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("[wrote {p}]");
                    }
                    if let Some(p) = &metrics_path {
                        if let Err(e) = std::fs::write(p, &out.metrics) {
                            eprintln!("[could not write {p}: {e}]");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("[wrote {p}]");
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("trace failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if vcd_path.is_some() || metrics_path.is_some() || last.is_some() {
        eprintln!("--vcd/--metrics/--last only apply to 'expt trace'");
        return ExitCode::from(2);
    }

    if ids.iter().any(|i| i == "fuzz") {
        if ids.len() > 1 {
            eprintln!("'fuzz' is a standalone campaign; drop the other ids");
            return ExitCode::from(2);
        }
        let (report, ok) = bench_harness::fuzz::campaign(
            seeds.unwrap_or(bench_harness::fuzz::DEFAULT_SEEDS),
            base.unwrap_or(bench_harness::fuzz::DEFAULT_BASE),
        );
        println!("{report}");
        if !ok {
            return ExitCode::FAILURE;
        }
        return match watchdog_verdict() {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        };
    }
    if seeds.is_some() || base.is_some() {
        eprintln!("--seeds/--base only apply to 'expt fuzz'");
        return ExitCode::from(2);
    }

    if list || ids.is_empty() {
        eprintln!(
            "usage: expt [--quick] [--smoke] [--jobs N | --seq] [--watchdog N] <e1..e19 | x1..x5 | all>...\n       \
             expt e18 [--policy static|dt|pushout|occamy|bshare]\n       \
             expt fuzz [--seeds N] [--base 0xHEX] [--jobs N | --seq]\n       \
             expt bench [--quick] [--gate]\n       \
             expt trace <e5|e6> [--vcd PATH] [--metrics PATH] [--last N] [--smoke]\n\nexperiments:"
        );
        for id in bench_harness::ALL {
            eprintln!("  {id}");
        }
        eprintln!("  fuzz  (differential conformance campaign; see EXPERIMENTS.md)");
        eprintln!("  bench (perf-regression harness; writes/gates BENCH_core.json)");
        eprintln!("  trace (telemetry export: VCD waveform + metrics JSON; see DESIGN.md §10)");
        return if list {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }

    let run_all = ids.iter().any(|i| i == "all");
    let selected: Vec<&str> = if run_all {
        bench_harness::ALL.to_vec()
    } else {
        let mut v = Vec::new();
        for id in &ids {
            if bench_harness::ALL.contains(&id.as_str()) {
                v.push(
                    bench_harness::ALL[bench_harness::ALL
                        .iter()
                        .position(|a| a == id)
                        .expect("checked")],
                );
            } else {
                eprintln!("unknown experiment '{id}' (try --list)");
                return ExitCode::from(2);
            }
        }
        v
    };

    let wall_start = std::time::Instant::now();
    // (id, secs, points, cycles_skipped, cycles_executed)
    let mut timings: Vec<(&str, f64, u64, u64, u64)> = Vec::new();
    for (i, id) in selected.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(90));
        }
        let t0 = std::time::Instant::now();
        let points_before = bench_harness::sweep::points_run();
        let skipped_before = simkernel::horizon::ff_skipped();
        let executed_before = simkernel::horizon::ff_executed();
        // `id` was validated against ALL above, but a registry mismatch
        // (id listed, module arm missing) must not take the whole run
        // down with a panic — report and fail with a clean exit code.
        let Some(report) = bench_harness::run_experiment(id, quick) else {
            eprintln!("experiment '{id}' is listed but not runnable (registry mismatch)");
            return ExitCode::FAILURE;
        };
        let secs = t0.elapsed().as_secs_f64();
        let points = bench_harness::sweep::points_run() - points_before;
        let skipped = simkernel::horizon::ff_skipped() - skipped_before;
        let executed = simkernel::horizon::ff_executed() - executed_before;
        println!("{report}");
        if skipped + executed > 0 {
            println!(
                "[{id} completed in {secs:.1}s; fast-forward skipped {skipped} of {} \
                 kernel cycles ({:.1}%)]",
                skipped + executed,
                100.0 * skipped as f64 / (skipped + executed) as f64
            );
        } else {
            println!("[{id} completed in {secs:.1}s]");
        }
        timings.push((id, secs, points, skipped, executed));
    }

    if run_all {
        let path = "BENCH_sweeps.json";
        match std::fs::write(
            path,
            sweeps_json(&timings, wall_start.elapsed().as_secs_f64(), quick),
        ) {
            Ok(()) => eprintln!("[wrote {path}]"),
            Err(e) => {
                // An unwritable output file is a failed run, not a
                // footnote: CI consumes this JSON.
                eprintln!("[could not write {path}: {e}]");
                return ExitCode::FAILURE;
            }
        }
    }
    match watchdog_verdict() {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

/// Render the machine-readable sweep report (hand-rolled JSON: the
/// workspace builds offline, without serde).
fn sweeps_json(timings: &[(&str, f64, u64, u64, u64)], total_secs: f64, quick: bool) -> String {
    let total_points: u64 = timings.iter().map(|t| t.2).sum();
    let total_skipped: u64 = timings.iter().map(|t| t.3).sum();
    let total_executed: u64 = timings.iter().map(|t| t.4).sum();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"threads\": {},", bench_harness::sweep::jobs());
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"total_seconds\": {total_secs:.3},");
    let _ = writeln!(s, "  \"total_points\": {total_points},");
    let _ = writeln!(
        s,
        "  \"points_per_second\": {:.3},",
        total_points as f64 / total_secs.max(1e-9)
    );
    let _ = writeln!(s, "  \"cycles_skipped\": {total_skipped},");
    let _ = writeln!(s, "  \"cycles_executed\": {total_executed},");
    let _ = writeln!(
        s,
        "  \"ff_skip_fraction\": {:.4},",
        total_skipped as f64 / ((total_skipped + total_executed) as f64).max(1.0)
    );
    s.push_str("  \"experiments\": [\n");
    for (k, (id, secs, points, skipped, executed)) in timings.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": \"{id}\", \"seconds\": {secs:.3}, \"points\": {points}, \
             \"points_per_second\": {:.3}, \"cycles_skipped\": {skipped}, \
             \"cycles_executed\": {executed}}}",
            *points as f64 / secs.max(1e-9)
        );
        s.push_str(if k + 1 < timings.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
