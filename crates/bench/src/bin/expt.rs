//! `expt` — regenerate the paper's tables and figures.
//!
//! ```text
//! expt <id>...      run specific experiments (e1..e15)
//! expt all          run everything
//! expt --quick ...  shrink run lengths (CI-sized)
//! expt --list       list experiments
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();

    if list || ids.is_empty() {
        eprintln!("usage: expt [--quick] <e1..e15 | all>...\n\nexperiments:");
        for id in bench_harness::ALL {
            eprintln!("  {id}");
        }
        return if list {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        bench_harness::ALL.to_vec()
    } else {
        let mut v = Vec::new();
        for id in &ids {
            if bench_harness::ALL.contains(&id.as_str()) {
                v.push(
                    bench_harness::ALL[bench_harness::ALL
                        .iter()
                        .position(|a| a == id)
                        .expect("checked")],
                );
            } else {
                eprintln!("unknown experiment '{id}' (try --list)");
                return ExitCode::from(2);
            }
        }
        v
    };

    for (i, id) in selected.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(90));
        }
        let t0 = std::time::Instant::now();
        let report = bench_harness::run_experiment(id, quick).expect("validated id");
        println!("{report}");
        println!("[{id} completed in {:.1}s]", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
