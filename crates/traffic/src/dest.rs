//! Destination distributions.

use simkernel::SplitMix64;

/// How a generated cell picks its output port.
#[derive(Debug, Clone)]
pub enum DestDist {
    /// Uniform over all `n` outputs (the iid-uniform assumption behind the
    /// 58.6 % input-queueing saturation result).
    Uniform {
        /// Number of output ports.
        n: usize,
    },
    /// One output receives extra traffic: with probability `hot_frac` the
    /// cell goes to `hot`, otherwise uniform over all outputs.
    Hotspot {
        /// Number of output ports.
        n: usize,
        /// The hot output.
        hot: usize,
        /// Probability mass diverted to the hot output.
        hot_frac: f64,
    },
    /// Arbitrary per-output weights (need not be normalized).
    Weighted {
        /// Cumulative weights (monotone, last element = total mass).
        cdf: Vec<f64>,
    },
}

impl DestDist {
    /// Uniform over `n` outputs.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        DestDist::Uniform { n }
    }

    /// Hotspot: fraction `hot_frac` of cells go straight to `hot`.
    pub fn hotspot(n: usize, hot: usize, hot_frac: f64) -> Self {
        assert!(n > 0 && hot < n && (0.0..=1.0).contains(&hot_frac));
        DestDist::Hotspot { n, hot, hot_frac }
    }

    /// Weighted by `weights` (any non-negative, not all zero).
    pub fn weighted(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w >= 0.0));
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        DestDist::Weighted { cdf }
    }

    /// Number of possible destinations.
    pub fn outputs(&self) -> usize {
        match self {
            DestDist::Uniform { n } => *n,
            DestDist::Hotspot { n, .. } => *n,
            DestDist::Weighted { cdf } => cdf.len(),
        }
    }

    /// Draw a destination.
    pub fn draw(&self, rng: &mut SplitMix64) -> usize {
        match self {
            DestDist::Uniform { n } => rng.below_usize(*n),
            DestDist::Hotspot { n, hot, hot_frac } => {
                if rng.chance(*hot_frac) {
                    *hot
                } else {
                    rng.below_usize(*n)
                }
            }
            DestDist::Weighted { cdf } => {
                let total = *cdf.last().expect("non-empty");
                let x = rng.next_f64() * total;
                match cdf.binary_search_by(|w| w.partial_cmp(&x).expect("no NaN")) {
                    Ok(i) => (i + 1).min(cdf.len() - 1),
                    Err(i) => i,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_many(d: &DestDist, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut counts = vec![0u64; d.outputs()];
        for _ in 0..n {
            counts[d.draw(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_uniform() {
        let d = DestDist::uniform(8);
        let counts = draw_many(&d, 80_000, 1);
        for &c in &counts {
            assert!((9_300..=10_700).contains(&c), "count {c}");
        }
    }

    #[test]
    fn hotspot_skews() {
        let d = DestDist::hotspot(4, 2, 0.5);
        let counts = draw_many(&d, 40_000, 2);
        // Output 2 gets 0.5 + 0.5/4 = 62.5 % of traffic.
        let frac = counts[2] as f64 / 40_000.0;
        assert!((frac - 0.625).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn weighted_matches_weights() {
        let d = DestDist::weighted(&[1.0, 0.0, 3.0]);
        let counts = draw_many(&d, 40_000, 3);
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / 40_000.0;
        assert!((frac2 - 0.75).abs() < 0.02, "{frac2}");
    }

    #[test]
    #[should_panic]
    fn weighted_rejects_zero_total() {
        let _ = DestDist::weighted(&[0.0, 0.0]);
    }

    #[test]
    fn outputs_counts() {
        assert_eq!(DestDist::uniform(5).outputs(), 5);
        assert_eq!(DestDist::hotspot(5, 0, 0.1).outputs(), 5);
        assert_eq!(DestDist::weighted(&[1.0; 7]).outputs(), 7);
    }
}
