//! Word-level link feeder for the RTL models.
//!
//! The RTL switch consumes one `Option<u64>` word per input link per cycle.
//! A [`PacketFeeder`] drives one link: it generates whole [`Packet`]s
//! (randomly at a configured load, or from an explicit queue for directed
//! tests) and serializes them word by word, with geometric idle gaps tuned
//! so the long-run link utilization matches the requested load.

use crate::dest::DestDist;
use simkernel::cell::Packet;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::collections::VecDeque;

/// Record of a packet this feeder put on the wire (for conservation and
/// integrity checks at the far end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentRecord {
    /// Packet id.
    pub id: u64,
    /// Destination output port.
    pub dst: usize,
    /// Cycle in which word 0 was driven.
    pub birth: Cycle,
}

/// Serializes packets onto one input link, one word per cycle.
#[derive(Debug, Clone)]
pub struct PacketFeeder {
    port: usize,
    packet_words: usize,
    start_prob: f64,
    dist: Option<DestDist>,
    rng: SplitMix64,
    next_id: u64,
    id_stride: u64,
    queue: VecDeque<Packet>,
    current: Option<(Packet, usize)>,
    sent: Vec<SentRecord>,
}

impl PacketFeeder {
    /// A random feeder for input `port`: packets of `packet_words` words,
    /// long-run link load `load`, destinations from `dist`. Packet ids are
    /// `port + k·id_stride` so feeders sharing an `id_stride` equal to the
    /// port count generate globally unique ids.
    pub fn random(
        port: usize,
        packet_words: usize,
        load: f64,
        dist: DestDist,
        seed: u64,
        id_stride: u64,
    ) -> Self {
        assert!(packet_words >= 1);
        assert!((0.0..=1.0).contains(&load));
        assert!(id_stride as usize > port || id_stride == 0 && port == 0 || id_stride > 0);
        // With geometric idle gaps of mean g, utilization = L/(L+g);
        // solve g for the requested load, then the per-idle-cycle start
        // probability q satisfies g = (1-q)/q.
        let start_prob = if load >= 1.0 {
            1.0
        } else if load <= 0.0 {
            0.0
        } else {
            let l = packet_words as f64;
            let g = l * (1.0 - load) / load;
            1.0 / (1.0 + g)
        };
        PacketFeeder {
            port,
            packet_words,
            start_prob,
            dist: Some(dist),
            rng: SplitMix64::new(seed ^ (port as u64).wrapping_mul(0x9e37_79b9)),
            next_id: port as u64,
            id_stride,
            queue: VecDeque::new(),
            current: None,
            sent: Vec::new(),
        }
    }

    /// A directed feeder that only transmits explicitly queued packets.
    pub fn scripted(port: usize, packet_words: usize) -> Self {
        PacketFeeder {
            port,
            packet_words,
            start_prob: 0.0,
            dist: None,
            rng: SplitMix64::new(port as u64),
            next_id: 0,
            id_stride: 0,
            queue: VecDeque::new(),
            current: None,
            sent: Vec::new(),
        }
    }

    /// Queue a packet for transmission (takes precedence over random
    /// generation). Panics if its size does not match the feeder's.
    pub fn push(&mut self, p: Packet) {
        assert_eq!(p.size_words, self.packet_words, "packet size mismatch");
        self.queue.push_back(p);
    }

    /// The input port this feeder drives.
    pub fn port(&self) -> usize {
        self.port
    }

    /// Stop generating new random packets. The packet currently on the
    /// wire (and anything explicitly queued) still completes — a feeder
    /// must never cut a packet short, because the link protocol forbids
    /// idles inside a packet.
    pub fn halt(&mut self) {
        self.dist = None;
    }

    /// Packets put on the wire so far.
    pub fn sent(&self) -> &[SentRecord] {
        &self.sent
    }

    /// True if a packet is mid-transmission or queued.
    pub fn busy(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    /// The word on the link in cycle `now` (`None` = idle).
    pub fn tick(&mut self, now: Cycle) -> Option<u64> {
        if self.current.is_none() {
            // Start the next queued packet, or generate one at random.
            if let Some(p) = self.queue.pop_front() {
                self.current = Some((p, 0));
            } else if let Some(dist) = self.dist.as_ref() {
                if !self.rng.chance(self.start_prob) {
                    return None;
                }
                let dst = dist.draw(&mut self.rng);
                let id = self.next_id;
                self.next_id += self.id_stride.max(1);
                let p = Packet::synth(id, self.port, dst, self.packet_words, now);
                self.current = Some((p, 0));
            }
        }
        let (p, k) = self.current.as_mut()?;
        if *k == 0 {
            self.sent.push(SentRecord {
                id: p.id.0,
                dst: p.dst.index(),
                birth: now,
            });
        }
        let w = p.words[*k];
        *k += 1;
        if *k == p.size_words {
            self.current = None;
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_feeder_serializes_in_order() {
        let mut f = PacketFeeder::scripted(0, 4);
        let p = Packet::synth(5, 0, 2, 4, 0);
        f.push(p.clone());
        let words: Vec<Option<u64>> = (0..6).map(|c| f.tick(c)).collect();
        assert_eq!(words[0], Some(p.words[0]));
        assert_eq!(words[3], Some(p.words[3]));
        assert_eq!(words[4], None);
        assert_eq!(f.sent().len(), 1);
        assert_eq!(f.sent()[0].birth, 0);
    }

    #[test]
    fn packets_are_contiguous_on_the_wire() {
        let mut f = PacketFeeder::random(0, 8, 0.7, DestDist::uniform(4), 11, 4);
        let mut in_packet = 0usize;
        for c in 0..50_000u64 {
            match f.tick(c) {
                Some(_) => in_packet += 1,
                None => {
                    assert!(
                        in_packet.is_multiple_of(8),
                        "idle mid-packet after {in_packet} words"
                    );
                }
            }
        }
    }

    #[test]
    fn measured_load_matches() {
        for load in [0.2, 0.5, 0.9] {
            let mut f = PacketFeeder::random(1, 8, load, DestDist::uniform(4), 3, 4);
            let busy = (0..200_000u64).filter(|&c| f.tick(c).is_some()).count();
            let l = busy as f64 / 200_000.0;
            assert!((l - load).abs() < 0.02, "target {load}, measured {l}");
        }
    }

    #[test]
    fn ids_unique_across_feeders() {
        let mut ids = std::collections::HashSet::new();
        for port in 0..4 {
            let mut f = PacketFeeder::random(port, 4, 0.9, DestDist::uniform(4), 7, 4);
            for c in 0..1000 {
                f.tick(c);
            }
            for r in f.sent() {
                assert!(ids.insert(r.id), "duplicate id {}", r.id);
            }
        }
        assert!(ids.len() > 100);
    }

    #[test]
    fn zero_load_stays_idle() {
        let mut f = PacketFeeder::random(0, 4, 0.0, DestDist::uniform(4), 1, 4);
        assert!((0..1000u64).all(|c| f.tick(c).is_none()));
    }

    #[test]
    fn full_load_never_idles() {
        let mut f = PacketFeeder::random(0, 4, 1.0, DestDist::uniform(4), 1, 4);
        assert!((0..1000u64).all(|c| f.tick(c).is_some()));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn push_checks_size() {
        let mut f = PacketFeeder::scripted(0, 4);
        f.push(Packet::synth(0, 0, 0, 8, 0));
    }
}
