//! # traffic — workload generators for switch simulations
//!
//! The performance claims the paper builds on (§2) all come from the
//! standard workloads of the switching literature, which this crate
//! reproduces:
//!
//! * [`Bernoulli`] — independent, identically distributed arrivals with a
//!   configurable destination distribution (\[KaHM87\], \[HlKa88\], \[AOST93\]);
//! * [`BurstyOnOff`] — geometrically distributed bursts to a single
//!   destination (the "bursty traffic larger than the buffers" regime of
//!   §2.1);
//! * [`PermutationSource`] — fixed input→output permutations (best case,
//!   no output contention);
//! * [`TraceSource`] — replay of explicit arrival schedules for directed
//!   tests;
//! * [`PacketFeeder`] — serializes whole multi-word packets onto a link,
//!   one word per cycle, for the word-level RTL models.
//!
//! All generators draw from [`simkernel::SplitMix64`], so every workload is
//! reproducible from its seed. Destination draws are factored into
//! [`DestDist`] so each source supports uniform, hotspot, and arbitrary
//! weighted destination patterns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dest;
pub mod feeder;
pub mod sources;

pub use dest::DestDist;
pub use feeder::PacketFeeder;
pub use sources::{Bernoulli, BurstyOnOff, CellSource, PermutationSource, TraceSource};
