//! Cell-level arrival processes.

use crate::dest::DestDist;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;

/// A slotted source of cell arrivals for an `n`-input switch.
///
/// Once per slot, [`CellSource::poll`] fills `out[i]` with `Some(dst)` if a
/// cell arrives on input `i` destined to output `dst`, `None` otherwise.
pub trait CellSource {
    /// Number of input ports this source feeds.
    fn ports(&self) -> usize;

    /// Generate the arrivals of slot `now` into `out` (length must equal
    /// [`CellSource::ports`]).
    fn poll(&mut self, now: Cycle, out: &mut [Option<usize>]);
}

/// Independent Bernoulli arrivals: each input receives a cell with
/// probability `load` each slot, destination drawn from `dist`.
///
/// ```
/// use traffic::{Bernoulli, DestDist};
/// use traffic::sources::CellSource;
///
/// let mut src = Bernoulli::new(4, 0.5, DestDist::uniform(4), 7);
/// let mut slot = vec![None; 4];
/// src.poll(0, &mut slot);
/// for dst in slot.iter().flatten() {
///     assert!(*dst < 4);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Bernoulli {
    load: f64,
    dist: DestDist,
    rngs: Vec<SplitMix64>,
}

impl Bernoulli {
    /// `ports` independent inputs at the given per-slot arrival probability.
    pub fn new(ports: usize, load: f64, dist: DestDist, seed: u64) -> Self {
        assert!(ports > 0 && (0.0..=1.0).contains(&load));
        let mut root = SplitMix64::new(seed);
        Bernoulli {
            load,
            dist,
            rngs: (0..ports).map(|_| root.fork()).collect(),
        }
    }

    /// The configured offered load.
    pub fn load(&self) -> f64 {
        self.load
    }
}

impl CellSource for Bernoulli {
    fn ports(&self) -> usize {
        self.rngs.len()
    }

    fn poll(&mut self, _now: Cycle, out: &mut [Option<usize>]) {
        assert_eq!(out.len(), self.rngs.len());
        for (i, slot) in out.iter_mut().enumerate() {
            let rng = &mut self.rngs[i];
            *slot = rng.chance(self.load).then(|| self.dist.draw(rng));
        }
    }
}

/// Bursty on/off arrivals: each input alternates between ON bursts
/// (one cell per slot, all to the same destination) and OFF gaps. Burst
/// lengths are geometric with the given mean; gap lengths are geometric
/// with the mean that yields the requested long-run load.
#[derive(Debug, Clone)]
pub struct BurstyOnOff {
    mean_burst: f64,
    mean_gap: f64,
    dist: DestDist,
    per_port: Vec<PortState>,
}

#[derive(Debug, Clone)]
struct PortState {
    rng: SplitMix64,
    /// Remaining slots of the current burst (>0: ON) and its destination.
    burst_left: u64,
    burst_dst: usize,
    /// Remaining slots of the current gap (only meaningful when OFF).
    gap_left: u64,
}

impl BurstyOnOff {
    /// `ports` inputs at long-run `load`, with geometric bursts of the
    /// given `mean_burst ≥ 1` cells.
    pub fn new(ports: usize, load: f64, mean_burst: f64, dist: DestDist, seed: u64) -> Self {
        assert!(ports > 0 && (0.0..1.0).contains(&load) || load == 1.0);
        assert!(mean_burst >= 1.0);
        // load = mean_burst / (mean_burst + mean_gap)
        let mean_gap = if load >= 1.0 {
            0.0
        } else {
            mean_burst * (1.0 - load) / load
        };
        let mut root = SplitMix64::new(seed);
        BurstyOnOff {
            mean_burst,
            mean_gap,
            dist,
            per_port: (0..ports)
                .map(|_| PortState {
                    rng: root.fork(),
                    burst_left: 0,
                    burst_dst: 0,
                    gap_left: 0,
                })
                .collect(),
        }
    }

    fn draw_burst(mean: f64, rng: &mut SplitMix64) -> u64 {
        // Geometric with support {1, 2, ...} and mean `mean`.
        1 + rng.geometric(1.0 / mean)
    }

    fn draw_gap(mean: f64, rng: &mut SplitMix64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        // Geometric with support {0, 1, ...} and mean `mean`.
        rng.geometric(1.0 / (1.0 + mean))
    }
}

impl CellSource for BurstyOnOff {
    fn ports(&self) -> usize {
        self.per_port.len()
    }

    fn poll(&mut self, _now: Cycle, out: &mut [Option<usize>]) {
        assert_eq!(out.len(), self.per_port.len());
        for (slot, st) in out.iter_mut().zip(self.per_port.iter_mut()) {
            if st.burst_left == 0 && st.gap_left == 0 {
                // Start a new cycle of gap-then-burst.
                st.gap_left = Self::draw_gap(self.mean_gap, &mut st.rng);
                st.burst_left = Self::draw_burst(self.mean_burst, &mut st.rng);
                st.burst_dst = self.dist.draw(&mut st.rng);
            }
            if st.gap_left > 0 {
                st.gap_left -= 1;
                *slot = None;
            } else {
                st.burst_left -= 1;
                *slot = Some(st.burst_dst);
            }
        }
    }
}

/// Deterministic permutation traffic: in every slot, with probability
/// `load`, input `i` sends to output `perm[i]` — contention-free by
/// construction, the best case for any architecture.
#[derive(Debug, Clone)]
pub struct PermutationSource {
    perm: Vec<usize>,
    load: f64,
    rngs: Vec<SplitMix64>,
}

impl PermutationSource {
    /// A source with a fixed permutation.
    pub fn new(perm: Vec<usize>, load: f64, seed: u64) -> Self {
        let n = perm.len();
        assert!(n > 0);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "not a permutation");
        let mut root = SplitMix64::new(seed);
        PermutationSource {
            perm,
            load,
            rngs: (0..n).map(|_| root.fork()).collect(),
        }
    }
}

impl CellSource for PermutationSource {
    fn ports(&self) -> usize {
        self.perm.len()
    }

    fn poll(&mut self, _now: Cycle, out: &mut [Option<usize>]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.rngs[i].chance(self.load).then(|| self.perm[i]);
        }
    }
}

/// Replays an explicit per-slot schedule; slots beyond the schedule are
/// idle. For directed tests ("input 0 and input 1 both send to output 2 in
/// slot 5").
#[derive(Debug, Clone)]
pub struct TraceSource {
    ports: usize,
    schedule: Vec<Vec<Option<usize>>>,
}

impl TraceSource {
    /// A trace over `ports` inputs; `schedule[t][i]` is the arrival at
    /// input `i` in slot `t`.
    pub fn new(ports: usize, schedule: Vec<Vec<Option<usize>>>) -> Self {
        for row in &schedule {
            assert_eq!(row.len(), ports, "schedule row width mismatch");
        }
        TraceSource { ports, schedule }
    }

    /// Number of scheduled slots.
    pub fn len_slots(&self) -> usize {
        self.schedule.len()
    }
}

impl CellSource for TraceSource {
    fn ports(&self) -> usize {
        self.ports
    }

    fn poll(&mut self, now: Cycle, out: &mut [Option<usize>]) {
        match self.schedule.get(now as usize) {
            Some(row) => out.copy_from_slice(row),
            None => out.fill(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure_load(src: &mut dyn CellSource, slots: u64) -> f64 {
        let n = src.ports();
        let mut buf = vec![None; n];
        let mut cells = 0u64;
        for t in 0..slots {
            src.poll(t, &mut buf);
            cells += buf.iter().flatten().count() as u64;
        }
        cells as f64 / (slots * n as u64) as f64
    }

    #[test]
    fn bernoulli_load_matches() {
        let mut s = Bernoulli::new(8, 0.6, DestDist::uniform(8), 42);
        let l = measure_load(&mut s, 20_000);
        assert!((l - 0.6).abs() < 0.01, "measured load {l}");
    }

    #[test]
    fn bernoulli_deterministic() {
        let run = |seed| {
            let mut s = Bernoulli::new(4, 0.5, DestDist::uniform(4), seed);
            let mut buf = vec![None; 4];
            let mut v = Vec::new();
            for t in 0..100 {
                s.poll(t, &mut buf);
                v.push(buf.clone());
            }
            v
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn bursty_load_matches() {
        let mut s = BurstyOnOff::new(8, 0.5, 10.0, DestDist::uniform(8), 1);
        let l = measure_load(&mut s, 100_000);
        assert!((l - 0.5).abs() < 0.02, "measured load {l}");
    }

    #[test]
    fn bursty_bursts_go_to_one_destination() {
        // A burst is a maximal same-destination run; adjacent bursts may
        // abut (zero-length gap), so split runs on idle OR dest change.
        let mut s = BurstyOnOff::new(1, 0.5, 16.0, DestDist::uniform(8), 3);
        let mut buf = [None];
        let mut runs: Vec<u64> = Vec::new();
        let mut cur_len = 0u64;
        let mut cur_dst: Option<usize> = None;
        for t in 0..100_000 {
            s.poll(t, &mut buf);
            match buf[0] {
                Some(d) if Some(d) == cur_dst => cur_len += 1,
                Some(d) => {
                    if cur_len > 0 {
                        runs.push(cur_len);
                    }
                    cur_dst = Some(d);
                    cur_len = 1;
                }
                None => {
                    if cur_len > 0 {
                        runs.push(cur_len);
                    }
                    cur_dst = None;
                    cur_len = 0;
                }
            }
        }
        assert!(runs.len() > 500, "expected many bursts, got {}", runs.len());
        let mean: f64 = runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len() as f64;
        // Same-dest adjacent bursts merge occasionally, inflating slightly.
        assert!((mean - 16.0).abs() < 3.0, "mean burst {mean}");
    }

    #[test]
    fn bursty_full_load_never_idles() {
        let mut s = BurstyOnOff::new(2, 1.0, 4.0, DestDist::uniform(4), 5);
        let mut buf = vec![None; 2];
        for t in 0..1000 {
            s.poll(t, &mut buf);
            assert!(buf.iter().all(|c| c.is_some()), "idle slot at load 1.0");
        }
    }

    #[test]
    fn permutation_contention_free() {
        let mut s = PermutationSource::new(vec![2, 0, 3, 1], 1.0, 9);
        let mut buf = vec![None; 4];
        for t in 0..100 {
            s.poll(t, &mut buf);
            let mut seen = [false; 4];
            for d in buf.iter().flatten() {
                assert!(!seen[*d], "two inputs sent to output {d}");
                seen[*d] = true;
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_validated() {
        let _ = PermutationSource::new(vec![0, 0, 1], 1.0, 0);
    }

    #[test]
    fn trace_replays_then_idles() {
        let mut s = TraceSource::new(2, vec![vec![Some(1), None], vec![None, Some(0)]]);
        let mut buf = vec![None; 2];
        s.poll(0, &mut buf);
        assert_eq!(buf, vec![Some(1), None]);
        s.poll(1, &mut buf);
        assert_eq!(buf, vec![None, Some(0)]);
        s.poll(2, &mut buf);
        assert_eq!(buf, vec![None, None]);
    }
}
