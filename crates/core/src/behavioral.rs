//! Cell-level behavioral model of the pipelined shared-buffer switch.
//!
//! Same initiation semantics as the RTL model — one wave per cycle, read
//! priority, EDF writes, automatic cut-through, per-output FIFO service,
//! shared buffer pool — but packets are descriptors, not words, so a
//! million-cycle statistical run costs microseconds per thousand cycles
//! instead of full bank sweeps. Experiments E3/E6/E15 run on this model;
//! an integration test pins its departure timing to the RTL model's,
//! cycle for cycle, on randomized workloads.
//!
//! ## Model of time
//!
//! The clock is the word clock of the RTL model. A packet is `S = n_in +
//! n_out` words; a packet arriving on input `i` occupies that link for
//! cycles `[a, a+S-1]`; a packet departing on output `j` occupies it for
//! `[rs+1, rs+S]` where `rs` is its read-wave initiation cycle.
//!
//! ## The bit-parallel dense path
//!
//! The per-cycle hot loop never walks the output queues or the packet
//! slab. Instead the model maintains three flat arrays — `ready_at[j]`
//! (earliest read-initiation cycle for output `j`'s current head,
//! `Cycle::MAX` when none), `welig_at[i]` / `wdead_at[i]` (eligibility
//! and latch deadline of input `i`'s front pending write) — and each
//! cycle folds them into packed `u64` request masks with branchless
//! compares. The masks feed [`Arbiter::decide_dense`]; popcounts feed
//! the arbitration probe event. The arrays are refreshed only at the
//! control points where the underlying state can change (queue push,
//! write grant, read initiation, overrun), so a steady-state cycle costs
//! a handful of word operations instead of pointer-chasing scans. The
//! scalar-reference twin ([`crate::reference::BehavioralSwitchRef`]) and
//! the differential property test pin this path byte-identical —
//! departures, counters, and probe streams — to the pre-rework model.

use crate::arbiter::{Arbiter, Decision, ReadReq, WriteReq};
use crate::config::SwitchConfig;
use crate::policy::{AdmitDecision, PolicyEngine, PolicyView, SharingPolicy};
use simkernel::ids::Cycle;
use std::collections::VecDeque;
use telemetry::{
    ArbOutcome, DropReason, GaugeKind, ProbeEvent, ProbeHandle, SharedRecorder, TelemetryConfig,
};

/// A departed packet, as reported by the behavioral model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BehavioralDeparture {
    /// Packet id.
    pub id: u64,
    /// Input of arrival.
    pub input: usize,
    /// Output of departure.
    pub output: usize,
    /// Cycle the header arrived.
    pub birth: Cycle,
    /// Cycle the read wave initiated (first word on the wire at `rs+1`).
    pub read_start: Cycle,
    /// Cycle the tail word was transmitted (`rs + S`).
    pub done: Cycle,
    /// True if, at header arrival, the destination output was idle and
    /// its queue empty — a pure cut-through candidate. §3.4's staggered-
    /// initiation analysis applies exactly to these packets: any delay
    /// beyond `read_start = birth + 1` came from losing initiation slots
    /// to other waves, not from ordinary output queueing.
    pub output_was_idle: bool,
}

impl BehavioralDeparture {
    /// Cut-through latency: first word out minus header in.
    /// The uncontended minimum is 2 (write wave at `a+1`, fused read).
    pub fn head_latency(&self) -> u64 {
        (self.read_start + 1).saturating_sub(self.birth)
    }

    /// Full-packet latency: tail out minus header in.
    pub fn tail_latency(&self) -> u64 {
        self.done.saturating_sub(self.birth)
    }
}

#[derive(Debug, Clone)]
struct BhvPacket {
    id: u64,
    input: usize,
    /// Destination bitmask (one bit per output; unicast = one bit).
    dsts: u32,
    /// Copies not yet claimed by a read initiation.
    refs: u32,
    birth: Cycle,
    output_was_idle: bool,
}

#[derive(Debug, Clone, Copy)]
struct PendingArrival {
    /// Index into `packets` slab.
    slot: usize,
    eligible: Cycle,
    deadline: Cycle,
}

/// Fixed-capacity ring of pending writes per input. Arrivals are spaced
/// `S` cycles apart and a pending write lives at most `S` cycles before
/// it is granted or swept, so the queue never holds more than three
/// entries (two steady-state, three transiently on an overrun cycle).
#[derive(Debug, Clone)]
struct PendingRing {
    buf: [PendingArrival; 4],
    head: u8,
    len: u8,
}

impl PendingRing {
    fn new() -> Self {
        PendingRing {
            buf: [PendingArrival {
                slot: 0,
                eligible: 0,
                deadline: 0,
            }; 4],
            head: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn front(&self) -> Option<&PendingArrival> {
        (self.len > 0).then(|| &self.buf[self.head as usize])
    }

    fn push_back(&mut self, p: PendingArrival) {
        assert!(self.len < 4, "pending ring overflow");
        self.buf[(self.head as usize + self.len as usize) & 3] = p;
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<PendingArrival> {
        (self.len > 0).then(|| {
            let p = self.buf[self.head as usize];
            self.head = (self.head + 1) & 3;
            self.len -= 1;
            p
        })
    }
}

/// The behavioral switch.
#[derive(Debug)]
pub struct BehavioralSwitch {
    cfg: SwitchConfig,
    stages: usize,
    /// Slab of live packets (slot reuse via free list).
    packets: Vec<Option<BhvPacket>>,
    /// Write-wave start cycle per slab slot (`Cycle::MAX` until the
    /// write wave is granted) — kept outside the slab so the hot
    /// readiness refresh reads one word, not a packet struct.
    wstart: Vec<Cycle>,
    free_slab: Vec<usize>,
    /// Buffer slots in use (≤ cfg.slots).
    buf_used: usize,
    /// Per-input: pending write requests.
    pending: Vec<PendingRing>,
    /// Per-input: cycles remaining of the packet currently on the wire.
    arriving: Vec<usize>,
    /// Per-output FIFO of slab indices.
    queues: Vec<VecDeque<usize>>,
    /// Per-output: earliest next read initiation.
    out_next_init: Vec<Cycle>,
    /// Bit-parallel dense-path state: earliest cycle output `j` could
    /// initiate a read for its current queue head (`Cycle::MAX` when the
    /// queue is empty or the head's write wave has not started). Already
    /// folds `out_next_init`.
    ready_at: Vec<Cycle>,
    /// Eligibility cycle of each input's front pending write
    /// (`Cycle::MAX` when none).
    welig_at: Vec<Cycle>,
    /// Latch deadline of each input's front pending write (`Cycle::MAX`
    /// when none) — doubles as the overrun-sweep guard.
    wdead_at: Vec<Cycle>,
    /// Earliest `done` cycle among in-flight transmissions (`Cycle::MAX`
    /// when none).
    tx_next_done: Cycle,
    /// More ports than a machine word: fall back to slice-based
    /// arbitration (cold; no shipped configuration hits this).
    wide_ports: bool,
    /// Cycles from write-wave start to head readiness: 1 under
    /// cut-through, `S` store-and-forward (precomputed from `cfg`).
    ready_base: Cycle,
    arb: Arbiter,
    cycle: Cycle,
    /// Packets dropped because the buffer pool was full.
    pub dropped: u64,
    /// Packets lost to latch overrun (must remain 0; see `rtl` docs).
    pub overruns: u64,
    /// Packets accepted.
    pub arrived: u64,
    /// Packets rejected by a non-static sharing policy (DESIGN.md §12).
    pub policy_drops: u64,
    /// Buffered packets evicted by the sharing policy for an arrival.
    pub policy_preempts: u64,
    /// The buffer-sharing policy (admission/preemption decisions).
    policy: PolicyEngine,
    /// Cached `policy.is_static()` — the dense path branches on this
    /// once per arrival to keep the static pool at its pre-policy cost.
    policy_static: bool,
    /// Scratch for the policy's live queue-length view (cold path).
    scratch_qlens: Vec<usize>,
    /// Every departure, written once at read initiation. One initiation
    /// per cycle and `done = rs + S` make done cycles strictly increasing
    /// in push order, so `departures[..committed]` is exactly the
    /// completed set and `departures[committed..]` the in-flight
    /// transmissions, in completion order.
    departures: Vec<BehavioralDeparture>,
    /// Departures whose tail word has been transmitted.
    committed: usize,
    /// Index into `departures` where this cycle's completions start —
    /// `tick` returns `&departures[dep_mark..committed]`.
    dep_mark: usize,
    probe: Option<ProbeHandle>,
    /// Last occupancy gauge emitted (probe attached only).
    last_occ: u64,
    /// Reusable per-cycle scratch (hot path: one `tick` per simulated
    /// cycle, millions per experiment — these must not allocate).
    scratch_masks: Vec<Option<u32>>,
    scratch_reads: Vec<ReadReq>,
    scratch_writes: Vec<WriteReq>,
}

impl BehavioralSwitch {
    /// Build from a configuration (same struct as the RTL model).
    pub fn new(cfg: SwitchConfig) -> Self {
        cfg.validate();
        let stages = cfg.stages();
        BehavioralSwitch {
            stages,
            packets: Vec::new(),
            wstart: Vec::new(),
            free_slab: Vec::new(),
            buf_used: 0,
            pending: vec![PendingRing::new(); cfg.n_in],
            arriving: vec![0; cfg.n_in],
            queues: vec![VecDeque::new(); cfg.n_out],
            out_next_init: vec![0; cfg.n_out],
            ready_at: vec![Cycle::MAX; cfg.n_out],
            welig_at: vec![Cycle::MAX; cfg.n_in],
            wdead_at: vec![Cycle::MAX; cfg.n_in],
            tx_next_done: Cycle::MAX,
            wide_ports: cfg.n_in > 64 || cfg.n_out > 64,
            ready_base: if cfg.cut_through { 1 } else { stages as Cycle },
            arb: Arbiter::new(cfg.arbiter),
            cycle: 0,
            dropped: 0,
            overruns: 0,
            arrived: 0,
            departures: Vec::new(),
            committed: 0,
            dep_mark: 0,
            probe: None,
            last_occ: 0,
            scratch_masks: Vec::with_capacity(cfg.n_in),
            scratch_reads: Vec::with_capacity(cfg.n_out),
            scratch_writes: Vec::with_capacity(cfg.n_in),
            policy_drops: 0,
            policy_preempts: 0,
            policy: cfg.policy.engine(cfg.n_out, stages),
            policy_static: cfg.policy.is_static(),
            scratch_qlens: Vec::with_capacity(cfg.n_out),
            cfg,
        }
    }

    /// Build a switch with telemetry per `tel`: returns the switch and
    /// the attached recorder (if `tel` enables one).
    pub fn with_telemetry(
        cfg: SwitchConfig,
        tel: &TelemetryConfig,
    ) -> (Self, Option<SharedRecorder>) {
        let mut sw = Self::new(cfg);
        let rec = tel.recorder();
        if let Some(r) = &rec {
            sw.attach_probe(r.handle());
        }
        (sw, rec)
    }

    /// Attach a probe sink; the cell-level model streams header/wave/
    /// departure/gauge events (no per-word events — it has no words).
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Packet slots currently occupied.
    pub fn occupancy(&self) -> usize {
        self.buf_used
    }

    /// True when an arrival can be offered on input `i` this cycle (the
    /// link is not mid-packet).
    pub fn input_free(&self, i: usize) -> bool {
        self.arriving[i] == 0
    }

    /// Packets queued for output `j` (including one mid-transmission).
    pub fn queue_len(&self, j: usize) -> usize {
        self.queues[j].len()
    }

    /// Advance one cycle. `arrivals[i] = Some(dst)` offers a new packet
    /// header on input `i` (only when [`BehavioralSwitch::input_free`];
    /// offering mid-packet panics — the caller owns link pacing, exactly
    /// as with the RTL model). `id` tagging is internal.
    ///
    /// Returns the packets whose tail word completed this cycle. The
    /// slice borrows internal scratch and is valid until the next tick.
    pub fn tick(&mut self, arrivals: &[Option<usize>]) -> &[BehavioralDeparture] {
        // Reuse the mask buffer across cycles; `mem::take` sidesteps the
        // simultaneous borrow of the buffer and `&mut self`.
        let mut masks = std::mem::take(&mut self.scratch_masks);
        masks.clear();
        masks.extend(arrivals.iter().map(|a| a.map(|d| 1u32 << d)));
        self.dispatch_advance(&masks);
        self.scratch_masks = masks;
        &self.departures[self.dep_mark..self.committed]
    }

    /// Like [`BehavioralSwitch::tick`] but arrivals carry destination
    /// bitmasks (multicast parity with the RTL model).
    pub fn tick_masks(&mut self, arrivals: &[Option<u32>]) -> &[BehavioralDeparture] {
        self.dispatch_advance(arrivals);
        &self.departures[self.dep_mark..self.committed]
    }

    /// Monomorphization split: the probe field is set once (or never),
    /// so the per-cycle kernel is compiled twice — with every telemetry
    /// emission site folded away, and with them live — and the `PROBED`
    /// branch is taken once per entry instead of several times per cycle.
    #[inline]
    fn dispatch_advance(&mut self, arrivals: &[Option<u32>]) {
        if self.probe.is_some() {
            self.advance::<true>(arrivals);
        } else {
            self.advance::<false>(arrivals);
        }
    }

    /// One cycle of the model; this cycle's completed departures are
    /// `departures[dep_mark..committed]` afterwards.
    fn advance<const PROBED: bool>(&mut self, arrivals: &[Option<u32>]) {
        assert_eq!(arrivals.len(), self.cfg.n_in);
        let c = self.cycle;
        let s = self.stages as Cycle;
        self.dep_mark = self.committed;

        // 1. Completed transmission.
        self.complete_tx::<PROBED>(c);

        // 2. Arrivals.
        for (i, a) in arrivals.iter().enumerate() {
            if self.arriving[i] > 0 {
                assert!(a.is_none(), "arrival offered mid-packet on input {i}");
                self.arriving[i] -= 1;
                continue;
            }
            if let Some(mask) = a {
                let excess = mask.checked_shr(self.cfg.n_out as u32).unwrap_or(0);
                assert!(*mask != 0 && excess == 0, "bad destination mask {mask:#x}");
                self.arriving[i] = self.stages - 1;
                if self.policy_static {
                    if self.buf_used == self.cfg.slots {
                        self.dropped += 1;
                        if PROBED {
                            if let Some(p) = &self.probe {
                                // Dropped before an id was assigned (ids number
                                // accepted packets); 0 marks "no id".
                                p.emit(
                                    c,
                                    ProbeEvent::Drop {
                                        id: 0,
                                        reason: DropReason::BufferFull,
                                    },
                                );
                            }
                        }
                        continue;
                    }
                } else if !self.policy_admit::<PROBED>(*mask, c) {
                    continue;
                }
                self.arrived += 1;
                self.buf_used += 1;
                let id = self.arrived;
                let primary = mask.trailing_zeros() as usize;
                let output_was_idle = mask.count_ones() == 1
                    && self.queues[primary].is_empty()
                    && self.out_next_init[primary] <= c + 1;
                let pkt = BhvPacket {
                    id,
                    input: i,
                    dsts: *mask,
                    refs: mask.count_ones(),
                    birth: c,
                    output_was_idle,
                };
                if PROBED {
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::HeaderArrived {
                                input: i,
                                id,
                                dst: primary,
                            },
                        );
                    }
                }
                let slot = match self.free_slab.pop() {
                    Some(sl) => {
                        self.packets[sl] = Some(pkt);
                        self.wstart[sl] = Cycle::MAX;
                        sl
                    }
                    None => {
                        self.packets.push(Some(pkt));
                        self.wstart.push(Cycle::MAX);
                        self.packets.len() - 1
                    }
                };
                for j in 0..self.cfg.n_out {
                    if mask & (1 << j) != 0 {
                        self.queues[j].push_back(slot);
                    }
                }
                self.pending[i].push_back(PendingArrival {
                    slot,
                    eligible: c + 1,
                    deadline: c + s,
                });
                if self.pending[i].len() == 1 {
                    self.welig_at[i] = c + 1;
                    self.wdead_at[i] = c + s;
                }
                // No `ready_at` refresh: a fresh queue head has no write
                // wave yet, so its readiness stays `Cycle::MAX` either way.
            }
        }

        // 3. Latch-overrun sweep; 4. arbitration.
        self.sweep_if_overdue(c);
        self.arbitrate::<PROBED>(c);
        self.emit_occupancy::<PROBED>(c);
        self.cycle = c + 1;
    }

    /// Run `n` input-idle cycles as one fused batch — the bit-parallel
    /// kernel's multi-cycle entry point. Identical observable behavior
    /// to `n` calls of [`BehavioralSwitch::tick`] with all-`None`
    /// arrivals (same grants, probes, counters, departures), but the
    /// per-tick wrapper, the arrival scan, and the per-cycle link-pacing
    /// decrements are hoisted out of the loop: control can only change
    /// at arbitration decisions, so everything else fuses.
    ///
    /// Afterwards this batch's completed departures are
    /// `departures[dep_mark..committed]` (also the window
    /// [`BehavioralSwitch::tick`] would return).
    pub fn tick_idle_batch(&mut self, n: u64) {
        if self.probe.is_some() {
            self.idle_batch_impl::<true>(n);
        } else {
            self.idle_batch_impl::<false>(n);
        }
    }

    fn idle_batch_impl<const PROBED: bool>(&mut self, n: u64) {
        self.dep_mark = self.committed;
        let end = self.cycle + n;
        while self.cycle < end {
            let c = self.cycle;
            self.complete_tx::<PROBED>(c);
            self.sweep_if_overdue(c);
            self.arbitrate::<PROBED>(c);
            self.emit_occupancy::<PROBED>(c);
            self.cycle = c + 1;
        }
        // Link pacing: under idle input the `arriving` counters only
        // drain, so the per-cycle decrements collapse to one subtract.
        let n = usize::try_from(n).unwrap_or(usize::MAX);
        for a in &mut self.arriving {
            *a = a.saturating_sub(n);
        }
    }

    /// Step 1: completed transmission — the cached next done-cycle turns
    /// the common nothing-completes cycle into one compare. Read
    /// initiations are unique per cycle, so done cycles are globally
    /// distinct: at most one transmission completes per cycle, and it is
    /// always the next uncommitted departure.
    #[inline]
    fn complete_tx<const PROBED: bool>(&mut self, c: Cycle) {
        if self.tx_next_done == c {
            if PROBED {
                if let Some(p) = &self.probe {
                    let d = &self.departures[self.committed];
                    p.emit(
                        c,
                        ProbeEvent::Departed {
                            output: d.output,
                            id: d.id,
                            birth: d.birth,
                            latency: c - d.birth,
                        },
                    );
                }
            }
            self.committed += 1;
            self.tx_next_done = self
                .departures
                .get(self.committed)
                .map_or(Cycle::MAX, |d| d.done);
        }
    }

    /// Step 3: latch-overrun sweep (diagnostic; unreachable under
    /// shipped policies) — guarded by the cached front deadlines, so
    /// the steady state pays one compare per input.
    #[inline]
    fn sweep_if_overdue(&mut self, c: Cycle) {
        let mut overdue = false;
        for &d in &self.wdead_at {
            overdue |= d < c;
        }
        if overdue {
            for i in 0..self.cfg.n_in {
                while let Some(front) = self.pending[i].front() {
                    if front.deadline >= c {
                        break;
                    }
                    let slot = front.slot;
                    self.pending[i].pop_front();
                    let p = self.packets[slot].take().expect("live packet");
                    for j in 0..self.cfg.n_out {
                        if p.dsts & (1 << j) != 0 {
                            self.queues[j].retain(|&sl| sl != slot);
                        }
                    }
                    self.free_slab.push(slot);
                    self.buf_used -= 1;
                    self.overruns += 1;
                    if let Some(probe) = &self.probe {
                        probe.emit(
                            c,
                            ProbeEvent::Drop {
                                id: p.id,
                                reason: DropReason::LatchOverrun,
                            },
                        );
                    }
                }
            }
            // Queue heads and pending fronts moved arbitrarily: rebuild
            // the flat request state (cold path).
            self.rebuild_request_state();
        }
    }

    /// Step 4: arbitration — fold the flat readiness arrays into packed
    /// request masks (one branchless compare per port), let the arbiter
    /// pick from the machine words, and execute the grant.
    #[inline]
    fn arbitrate<const PROBED: bool>(&mut self, c: Cycle) {
        let decision;
        if self.wide_ports {
            // Cold fallback for >64-port fabrics: same flat arrays,
            // slice-based requests.
            let mut reads = std::mem::take(&mut self.scratch_reads);
            reads.clear();
            for (j, &r) in self.ready_at.iter().enumerate() {
                if r <= c {
                    reads.push(ReadReq {
                        port: simkernel::ids::PortId(j),
                    });
                }
            }
            let mut writes = std::mem::take(&mut self.scratch_writes);
            writes.clear();
            for (i, &e) in self.welig_at.iter().enumerate() {
                if e <= c {
                    writes.push(WriteReq {
                        port: simkernel::ids::PortId(i),
                        deadline: self.wdead_at[i],
                    });
                }
            }
            decision = self.arb.decide(&reads, &writes);
            if PROBED && (!reads.is_empty() || !writes.is_empty()) {
                if let Some(p) = &self.probe {
                    let outcome = match decision {
                        Decision::Read(_) => ArbOutcome::Read,
                        Decision::Write(_) => ArbOutcome::Write,
                        Decision::Idle => ArbOutcome::Idle,
                    };
                    p.emit(
                        c,
                        ProbeEvent::Arbitration {
                            reads: reads.len(),
                            writes: writes.len(),
                            outcome,
                        },
                    );
                }
            }
            self.scratch_reads = reads;
            self.scratch_writes = writes;
        } else {
            let mut read_mask = 0u64;
            for (j, &r) in self.ready_at.iter().enumerate() {
                read_mask |= ((r <= c) as u64) << j;
            }
            let mut write_mask = 0u64;
            for (i, &e) in self.welig_at.iter().enumerate() {
                write_mask |= ((e <= c) as u64) << i;
            }
            // No requests → the arbiter idles without touching its state;
            // skip the call on the (low-load) common path. The popcounts
            // feed only the probe event, so they live in its branch.
            if read_mask | write_mask == 0 {
                decision = Decision::Idle;
            } else {
                decision = self.arb.decide_dense(read_mask, write_mask, &self.wdead_at);
                if PROBED {
                    if let Some(p) = &self.probe {
                        let outcome = match decision {
                            Decision::Read(_) => ArbOutcome::Read,
                            Decision::Write(_) => ArbOutcome::Write,
                            Decision::Idle => ArbOutcome::Idle,
                        };
                        p.emit(
                            c,
                            ProbeEvent::Arbitration {
                                reads: read_mask.count_ones() as usize,
                                writes: write_mask.count_ones() as usize,
                                outcome,
                            },
                        );
                    }
                }
            }
        }
        match decision {
            Decision::Read(j) => self.start_read::<PROBED>(j.index(), c, false),
            Decision::Write(i) => {
                let i = i.index();
                let pw = self.pending[i].pop_front().expect("granted");
                match self.pending[i].front() {
                    None => {
                        self.welig_at[i] = Cycle::MAX;
                        self.wdead_at[i] = Cycle::MAX;
                    }
                    Some(f) => {
                        self.welig_at[i] = f.eligible;
                        self.wdead_at[i] = f.deadline;
                    }
                }
                self.wstart[pw.slot] = c;
                let dsts = self.packets[pw.slot].as_ref().expect("live").dsts;
                let fusable = self.cfg.fused_cut_through;
                if PROBED {
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::WriteWave {
                                input: i,
                                addr: pw.slot,
                            },
                        );
                    }
                }
                // The write wave makes this packet readable wherever it
                // heads a destination queue; the first idle such output
                // (ascending) fuses a read onto the write wave.
                let head_ready = c + self.ready_base;
                let mut fused_done = false;
                let mut m = dsts;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.queues[j].front() == Some(&pw.slot) {
                        self.ready_at[j] = head_ready.max(self.out_next_init[j]);
                        if fusable && !fused_done && c >= self.out_next_init[j] {
                            self.start_read::<PROBED>(j, c, true);
                            fused_done = true;
                        }
                    }
                }
            }
            Decision::Idle => {}
        }
    }

    /// Cold path: one non-static admission decision. Returns true when
    /// the arrival may take a slot (a preemption has already freed one
    /// if the policy demanded it); on false the packet was refused and
    /// counted as a declared policy drop.
    fn policy_admit<const PROBED: bool>(&mut self, mask: u32, c: Cycle) -> bool {
        let dst = mask.trailing_zeros() as usize;
        let mut qlens = std::mem::take(&mut self.scratch_qlens);
        qlens.clear();
        qlens.extend(self.queues.iter().map(|q| q.len()));
        let decision = self.policy.admit(&PolicyView {
            occupancy: self.buf_used,
            capacity: self.cfg.slots,
            n_out: self.cfg.n_out,
            dst,
            qlens: &qlens,
        });
        self.scratch_qlens = qlens;
        let admitted = match decision {
            AdmitDecision::Accept => true,
            AdmitDecision::Reject => false,
            AdmitDecision::Preempt { victim } => self.evict_rearmost::<PROBED>(victim, c),
        };
        if !admitted {
            self.policy_drops += 1;
            if PROBED {
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Drop {
                            id: 0,
                            reason: DropReason::AdmissionPolicy,
                        },
                    );
                }
            }
        }
        admitted
    }

    /// Evict the rearmost *evictable* packet of output queue `victim`:
    /// its write wave must have fully retired (`c ≥ ws + S` — freeing a
    /// slot mid-write would let the reallocated address collide with the
    /// in-flight wave on the RTL model) and no copy may be in
    /// transmission (`refs` still equals the fanout; reads pop their
    /// queue entry at initiation, so queued entries can only lose refs
    /// through other queues of a multicast). The victim leaves *all* its
    /// queues and frees its slot. False when nothing qualifies.
    fn evict_rearmost<const PROBED: bool>(&mut self, victim: usize, c: Cycle) -> bool {
        let s = self.stages as Cycle;
        let q = &self.queues[victim];
        let mut found = None;
        for idx in (0..q.len()).rev() {
            let slot = q[idx];
            let ws = self.wstart[slot];
            if ws == Cycle::MAX || c < ws + s {
                continue;
            }
            let p = self.packets[slot].as_ref().expect("queued slot is live");
            if p.refs != p.dsts.count_ones() {
                continue;
            }
            found = Some(slot);
            break;
        }
        let Some(slot) = found else {
            return false;
        };
        let p = self.packets[slot].take().expect("live packet");
        for j in 0..self.cfg.n_out {
            if p.dsts & (1 << j) != 0 {
                self.queues[j].retain(|&sl| sl != slot);
                self.refresh_ready(j);
            }
        }
        self.free_slab.push(slot);
        self.buf_used -= 1;
        self.policy_preempts += 1;
        if PROBED {
            if let Some(pr) = &self.probe {
                pr.emit(
                    c,
                    ProbeEvent::Drop {
                        id: p.id,
                        reason: DropReason::Preempted,
                    },
                );
            }
        }
        true
    }

    /// Tail step: occupancy gauge, emitted only on change.
    #[inline]
    fn emit_occupancy<const PROBED: bool>(&mut self, c: Cycle) {
        if !PROBED {
            return;
        }
        if let Some(p) = &self.probe {
            let occ = self.buf_used as u64;
            if occ != self.last_occ {
                self.last_occ = occ;
                p.emit(
                    c,
                    ProbeEvent::Gauge {
                        gauge: GaugeKind::Occupancy,
                        index: 0,
                        value: occ,
                    },
                );
            }
        }
    }

    fn start_read<const PROBED: bool>(&mut self, j: usize, c: Cycle, fused: bool) {
        let slot = self.queues[j].pop_front().expect("read from empty queue");
        let (dep, free) = {
            let p = self.packets[slot].as_mut().expect("live packet");
            debug_assert!(p.refs > 0);
            p.refs -= 1;
            (
                BehavioralDeparture {
                    id: p.id,
                    input: p.input,
                    output: j,
                    birth: p.birth,
                    read_start: c,
                    done: c + self.stages as Cycle,
                    output_was_idle: p.output_was_idle,
                },
                p.refs == 0,
            )
        };
        if PROBED {
            self.probe_read(j, c, fused, slot, &dep);
        }
        if !self.policy_static {
            // BShare queueing-delay signal: birth-to-read latency.
            self.policy.on_read(j, c - dep.birth);
        }
        if free {
            self.packets[slot] = None;
            self.free_slab.push(slot);
            self.buf_used -= 1;
        }
        self.out_next_init[j] = c + self.stages as Cycle;
        self.tx_next_done = self.tx_next_done.min(dep.done);
        self.departures.push(dep);
        self.refresh_ready(j);
    }

    /// Telemetry for a read initiation (only compiled into the probed
    /// instantiation of the kernel).
    #[cold]
    fn probe_read(&self, j: usize, c: Cycle, fused: bool, slot: usize, dep: &BehavioralDeparture) {
        let Some(p) = &self.probe else { return };
        // A fused read starts on the write wave itself; an unfused one
        // measures its stagger against the packet's write start (`c` for
        // heads granted their read before any write wave — impossible
        // today, but kept defensive).
        let ws = self.wstart[slot];
        let ws = if ws == Cycle::MAX { c } else { ws };
        p.emit(
            c,
            ProbeEvent::ReadWave {
                output: j,
                addr: slot,
                fused,
            },
        );
        // Cut-through: the read overlaps the write wave still
        // depositing this packet (always true for the fused form).
        if fused || (self.cfg.cut_through && c < ws + self.stages as Cycle) {
            p.emit(
                c,
                ProbeEvent::CutThrough {
                    output: j,
                    id: dep.id,
                    fused,
                },
            );
        }
        if !fused {
            let earliest = if self.cfg.cut_through {
                ws + 1
            } else {
                ws + self.stages as Cycle
            };
            if c > earliest {
                p.emit(
                    c,
                    ProbeEvent::StaggeredStart {
                        output: j,
                        id: dep.id,
                    },
                );
            }
        }
    }

    /// Recompute `ready_at[j]` from output `j`'s queue head — control-
    /// point maintenance of the dense-path arrays.
    fn refresh_ready(&mut self, j: usize) {
        self.ready_at[j] = match self.queues[j].front() {
            None => Cycle::MAX,
            Some(&slot) => {
                let ws = self.wstart[slot];
                if ws == Cycle::MAX {
                    Cycle::MAX
                } else {
                    (ws + self.ready_base).max(self.out_next_init[j])
                }
            }
        };
    }

    /// Full rebuild of the dense-path request arrays. Cold path: only an
    /// overrun sweep rearranges queues arbitrarily enough to need it.
    fn rebuild_request_state(&mut self) {
        for j in 0..self.cfg.n_out {
            self.refresh_ready(j);
        }
        for i in 0..self.cfg.n_in {
            match self.pending[i].front() {
                None => {
                    self.welig_at[i] = Cycle::MAX;
                    self.wdead_at[i] = Cycle::MAX;
                }
                Some(f) => {
                    self.welig_at[i] = f.eligible;
                    self.wdead_at[i] = f.deadline;
                }
            }
        }
    }

    /// All departures so far (accumulating).
    pub fn departures(&self) -> &[BehavioralDeparture] {
        &self.departures[..self.committed]
    }

    /// Discard every *completed* departure record, keeping only the
    /// scheduled-but-unfinished tail. The departure log otherwise grows
    /// for the lifetime of the switch — fine for a single-switch
    /// experiment, unbounded for a long-lived fabric element that
    /// forwards millions of cells. Callers must have consumed
    /// [`BehavioralSwitch::departures`] first; afterwards the log (and
    /// the slice a subsequent `tick` returns) restarts from empty.
    pub fn forget_departures(&mut self) {
        if self.committed == 0 {
            return;
        }
        self.departures.drain(..self.committed);
        // `tx_next_done` caches a cycle, not an index, and the next
        // pending entry (if any) now sits at index 0 == `committed`.
        self.committed = 0;
        self.dep_mark = 0;
    }

    /// True when the switch holds nothing.
    pub fn is_quiescent(&self) -> bool {
        self.buf_used == 0
            && self.tx_next_done == Cycle::MAX
            && self.arriving.iter().all(|&a| a == 0)
    }

    /// Run idle cycles until quiescent, appending completed departures to
    /// `out`. Fast-forwards across dead time via the event-horizon
    /// kernel; `limit` caps the drain (watchdog).
    pub fn drain_into(
        &mut self,
        limit: u64,
        out: &mut Vec<BehavioralDeparture>,
    ) -> Result<Cycle, simkernel::SimError> {
        // The idle-arrival mask is all-None every cycle; reuse the mask
        // scratch shape via `tick_masks` on a cleared `scratch_masks`.
        let n_in = self.cfg.n_in;
        simkernel::horizon::drain(self, limit, "behavioral drain", |sw| {
            let mut masks = std::mem::take(&mut sw.scratch_masks);
            masks.clear();
            masks.resize(n_in, None);
            sw.dispatch_advance(&masks);
            sw.scratch_masks = masks;
            out.extend_from_slice(&sw.departures[sw.dep_mark..sw.committed]);
        })
    }
}

impl simkernel::Horizon for BehavioralSwitch {
    fn now(&self) -> Cycle {
        self.cycle
    }

    /// Event derivation (see `simkernel::horizon` for the contract).
    /// Under idle input the only state transitions are: a transmission
    /// completing (`tx_next_done`), a pending write becoming
    /// eligible, and a queued packet becoming read-ready at its output's
    /// next initiation slot. Everything else — the `arriving` link
    /// counters — is pure bookkeeping that `jump_to` replays in O(1).
    fn next_event(&self) -> Option<Cycle> {
        if self.is_quiescent() {
            return None;
        }
        // The dense-path arrays already hold every schedulable event:
        // `tx_next_done` (a transmission completing), `welig_at` (a
        // pending write becoming eligible — heads with write_start ==
        // None are covered here), `ready_at` (a queued head becoming
        // read-ready, `out_next_init` folded in).
        let now = self.cycle;
        let mut ev = self.tx_next_done;
        for &e in &self.welig_at {
            ev = ev.min(e);
        }
        for &r in &self.ready_at {
            ev = ev.min(r);
        }
        if ev != Cycle::MAX {
            return Some(ev);
        }
        // No scheduled event but not quiescent: either only the
        // `arriving` link counters are still draining (skippable —
        // the "event" is quiescence itself), or something is live
        // that we failed to account for (conservative dense tick).
        if self.buf_used == 0 && self.tx_next_done == Cycle::MAX {
            let max_arr = self.arriving.iter().copied().max().unwrap_or(0) as Cycle;
            Some(now + max_arr)
        } else {
            Some(now)
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.cycle, "jump_to moves time forward only");
        let delta = (target - self.cycle) as usize;
        for a in &mut self.arriving {
            *a = a.saturating_sub(delta);
        }
        // Dense idle ticking through a dead span leaves last cycle's
        // completion window empty; match that.
        self.dep_mark = self.committed;
        self.cycle = target;
    }
}

impl simkernel::BatchTick for BehavioralSwitch {
    fn tick_idle_batch(&mut self, n: u64) {
        BehavioralSwitch::tick_idle_batch(self, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2() -> SwitchConfig {
        SwitchConfig::symmetric(2, 16)
    }

    fn drain(sw: &mut BehavioralSwitch) -> Vec<BehavioralDeparture> {
        let mut out = Vec::new();
        sw.drain_into(200, &mut out)
            .expect("switch failed to drain");
        assert!(sw.is_quiescent(), "switch failed to drain");
        out
    }

    #[test]
    fn single_packet_cut_through_timing() {
        let mut sw = BehavioralSwitch::new(cfg2());
        let d = {
            let mut out = sw.tick(&[Some(1), None]).to_vec();
            out.extend(drain(&mut sw));
            out
        };
        assert_eq!(d.len(), 1);
        // Header at 0, fused write+read at 1, head latency 2, tail at 1+4.
        assert_eq!(d[0].birth, 0);
        assert_eq!(d[0].read_start, 1);
        assert_eq!(d[0].head_latency(), 2);
        assert_eq!(d[0].done, 5);
    }

    #[test]
    fn forget_departures_preserves_future_completions() {
        // Two packets to the same output: forget after the first tail
        // completes, and the second must still complete on schedule with
        // identical timing to an un-forgotten run.
        let run = |forget: bool| {
            let mut sw = BehavioralSwitch::new(cfg2());
            sw.tick(&[Some(1), None]);
            sw.tick(&[None, Some(1)]);
            let mut done = Vec::new();
            for _ in 0..40 {
                done.extend(sw.tick(&[None, None]).iter().map(|d| (d.id, d.done)));
                if forget && done.len() == 1 {
                    sw.forget_departures();
                    assert!(sw.departures().is_empty());
                }
            }
            done
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(false).len(), 2);
    }

    #[test]
    fn simultaneous_arrivals_are_staggered() {
        // §3.4: two heads in the same cycle to different outputs — one
        // initiates at a+1, the other at a+2 (one initiation per cycle).
        let mut sw = BehavioralSwitch::new(cfg2());
        let mut d = sw.tick(&[Some(0), Some(1)]).to_vec();
        d.extend(drain(&mut sw));
        assert_eq!(d.len(), 2);
        let mut starts: Vec<Cycle> = d.iter().map(|x| x.read_start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![1, 2], "staggered initiation");
    }

    #[test]
    fn same_output_service_is_fifo_and_back_to_back() {
        let mut sw = BehavioralSwitch::new(cfg2());
        let mut d = sw.tick(&[Some(0), Some(0)]).to_vec();
        d.extend(drain(&mut sw));
        assert_eq!(d.len(), 2);
        // Output 0 transmits [rs1+1, rs1+4] then [rs2+1, rs2+4] with
        // rs2 = rs1 + 4 (back to back).
        let rs: Vec<Cycle> = d.iter().map(|x| x.read_start).collect();
        assert_eq!((rs[0] as i64 - rs[1] as i64).abs(), 4);
    }

    #[test]
    fn buffer_full_drops() {
        let mut cfg = cfg2();
        cfg.slots = 1;
        let mut sw = BehavioralSwitch::new(cfg);
        sw.tick(&[Some(0), Some(0)]);
        assert_eq!(sw.dropped, 1);
        drain(&mut sw);
    }

    #[test]
    fn full_load_all_outputs_busy_no_loss() {
        // Permutation traffic at 100 % load: input i → output i, packets
        // back to back. The switch must carry everything without drops or
        // overruns.
        let n = 4;
        let mut cfg = SwitchConfig::symmetric(n, 64);
        cfg.fused_cut_through = true;
        let s = cfg.stages();
        let mut sw = BehavioralSwitch::new(cfg);
        let mut arr = vec![None; n];
        let cycles = 10_000u64;
        for c in 0..cycles {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = (c % s as u64 == 0).then_some(i);
            }
            sw.tick(&arr);
        }
        let d = sw.departures().len() as u64;
        assert_eq!(sw.dropped, 0, "no drops at full permutation load");
        assert_eq!(sw.overruns, 0, "no overruns ever");
        // Each output should have carried ~cycles/s packets.
        let expect = (cycles / s as u64) * n as u64;
        assert!(
            d >= expect - 2 * n as u64,
            "carried {d}, expected about {expect}"
        );
    }

    #[test]
    fn uniform_full_load_no_overruns() {
        // Worst-case initiation pressure: every input at 100 % load,
        // uniform random outputs. Buffer drops are legitimate (finite
        // pool), latch overruns are not.
        let n = 8;
        let cfg = SwitchConfig::symmetric(n, 32);
        let _s = cfg.stages();
        let mut sw = BehavioralSwitch::new(cfg);
        let mut rng = simkernel::SplitMix64::new(99);
        let mut arr = vec![None; n];
        for _ in 0..50_000u64 {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = sw.input_free(i).then(|| rng.below_usize(n));
            }
            sw.tick(&arr);
        }
        assert_eq!(sw.overruns, 0, "latch overruns must be impossible");
        assert!(sw.departures().len() > 10_000);
    }

    #[test]
    fn conservation_arrived_equals_departed_plus_dropped() {
        let n = 4;
        let cfg = SwitchConfig::symmetric(n, 8);
        let mut sw = BehavioralSwitch::new(cfg);
        let mut rng = simkernel::SplitMix64::new(5);
        let mut arr = vec![None; n];
        for _ in 0..20_000u64 {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = (sw.input_free(i) && rng.chance(0.7)).then(|| rng.below_usize(n));
            }
            sw.tick(&arr);
        }
        drain(&mut sw);
        let total_offered = sw.arrived + sw.dropped;
        assert_eq!(
            sw.arrived,
            sw.departures().len() as u64,
            "every accepted packet departs"
        );
        assert!(total_offered > 5_000);
        assert_eq!(sw.overruns, 0);
    }

    #[test]
    fn store_and_forward_adds_stages_latency() {
        let mut cfg = cfg2();
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        let mut sw = BehavioralSwitch::new(cfg);
        let mut d = sw.tick(&[Some(1), None]).to_vec();
        d.extend(drain(&mut sw));
        // ws = 1, rs = ws + S = 5, head latency = 6 = 2 + S.
        assert_eq!(d[0].read_start, 5);
        assert_eq!(d[0].head_latency(), 6);
    }
}

#[cfg(test)]
mod wide_port_tests {
    use super::*;

    #[test]
    fn works_at_32_ports() {
        // Regression: mask validation used `mask >> n_out`, which wraps
        // for n_out = 32 on a u32 (caught by the behavioral bench).
        let n = 32;
        let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 64));
        let mut arr = vec![None; n];
        arr[0] = Some(2); // output 2 (the 0x4 mask of the crash)
        sw.tick(&arr);
        let mut out = Vec::new();
        sw.drain_into(300, &mut out).expect("drain");
        assert_eq!(sw.departures().len(), 1);
        assert_eq!(sw.overruns, 0);
    }
}
