//! The word-level RTL model of the pipelined-memory shared-buffer switch.
//!
//! This model contains, as explicit state, every datapath element of
//! figures 4 and 5 of the paper:
//!
//! * one **input latch row** per incoming link (`stages` word latches per
//!   link, written cyclically as words arrive — *no double buffering*);
//! * `stages` single-ported **SRAM banks** (from `membank`, port-checked:
//!   any schedule a real bank could not execute panics);
//! * one shared **output register row** (`stages` registers; a register
//!   loaded at cycle `c` drives its bound outgoing link at `c + 1`);
//! * the **wave arbiter** (one initiation per cycle, read priority, EDF
//!   among writes);
//! * **buffer management** (free list + per-output descriptor queues);
//! * **automatic cut-through**, including the fused form where the output
//!   register samples the write bus in the very cycle the write wave
//!   begins.
//!
//! The public interface is one [`PipelinedSwitch::tick`] per clock cycle:
//! words in on every input link, words out on every output link. Packet
//! reassembly/verification for testbenches is provided by
//! [`OutputCollector`].
//!
//! ## Why latch overruns cannot happen (and are still counted)
//!
//! A write wave for a packet whose header arrived at `a` must initiate in
//! `[a+1, a+S]` (S cycles). Within any S consecutive cycles: each outgoing
//! link initiates at most one read (a link stays busy S cycles per
//! packet), so reads take at most `n_out` of the S slots; each *other*
//! input contributes at most one write with an earlier deadline (its
//! deadlines are S apart), so at most `n_in − 1` writes precede ours under
//! EDF. That totals `S − 1` competitors for `S` slots — the wave always
//! fits, even at 100 % load on every link. The model still counts
//! latch overruns (and probes them as [`DropReason::LatchOverrun`]) so
//! that any policy change violating the argument fails tests loudly
//! instead of silently corrupting packets.

use crate::arbiter::{Arbiter, Decision, ReadReq, WriteReq};
use crate::bufmgr::{BufferManager, Descriptor};
use crate::config::SwitchConfig;
use crate::events::{IntegrityReason, SwitchCounters};
use crate::policy::{AdmitDecision, PolicyEngine, PolicyView, SharingPolicy};
use crate::recovery::{RecoveryReport, RecoveryWindows};
use membank::bank::{EccOutcome, PortKind, SramBank};
use simkernel::cell::Packet;
use simkernel::ids::{Addr, Cycle, PortId};
use telemetry::{
    ArbOutcome, DropReason, FaultTag, GaugeKind, ProbeEvent, ProbeHandle, RecoveryTag,
    SharedRecorder, TelemetryConfig, WaveDir,
};

/// Map an integrity verdict onto the probe stream's drop vocabulary.
pub(crate) fn drop_reason(r: IntegrityReason) -> DropReason {
    match r {
        IntegrityReason::BadHeader => DropReason::BadHeader,
        IntegrityReason::TruncatedPacket => DropReason::Truncated,
        IntegrityReason::ChecksumMismatch => DropReason::Checksum,
        IntegrityReason::PayloadMismatch => DropReason::Payload,
    }
}

/// What one memory stage is doing in a given cycle (the fig. 5 control
/// signals, reconstructed per stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StageCtrl {
    /// No operation.
    #[default]
    Nop,
    /// Writing `addr` from input link `link`.
    Write {
        /// Slot written.
        addr: Addr,
        /// Source input link.
        link: PortId,
    },
    /// Reading `addr` for output link `link`.
    Read {
        /// Slot read.
        addr: Addr,
        /// Destination output link.
        link: PortId,
    },
    /// Fused write+cut-through: writing from `input` while the output
    /// register for `output` samples the bus.
    Fused {
        /// Slot written.
        addr: Addr,
        /// Source input link.
        input: PortId,
        /// Destination output link.
        output: PortId,
    },
}

#[derive(Debug, Clone)]
struct OutBinding {
    out: PortId,
    id: u64,
    birth: Cycle,
}

#[derive(Debug, Clone)]
struct ActiveWave {
    start: Cycle,
    addr: Addr,
    write_from: Option<PortId>,
    read_to: Option<OutBinding>,
}

#[derive(Debug, Clone, Copy)]
struct OutWord {
    link: PortId,
    word: u64,
    /// `Some((id, birth))` when this is the packet's tail word.
    tail_of: Option<(u64, Cycle)>,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    addr: Addr,
    eligible: Cycle,
    deadline: Cycle,
}

#[derive(Debug, Clone, Default)]
struct InputState {
    /// Words of the current packet received so far (0 = between packets).
    k: usize,
    pending: std::collections::VecDeque<PendingWrite>,
    /// Slot of the packet currently arriving (`None` once the tail is in,
    /// or if the packet was dropped at ingress).
    addr: Option<Addr>,
    /// Id of the packet currently arriving, to guard tail-time descriptor
    /// updates: under cut-through the slot may already have been freed
    /// *and reallocated* to a later packet.
    cur_id: u64,
    /// Running ingress checksum over the words received so far.
    chk: u64,
    /// Id to verify payload words against (ingress payload check only).
    expected_id: Option<u64>,
    /// A payload word deviated from the synthesis rule.
    corrupt: bool,
}

/// Per-output egress-verification state (the modeled link CRC).
#[derive(Debug, Clone, Copy, Default)]
struct OutVerify {
    id: u64,
    k: usize,
    corrupt: bool,
}

/// The checksum rule of the integrity scrub: fold words with
/// rotate-and-xor. Any single-bit flip anywhere in the packet flips
/// exactly one bit of the result, so single-event upsets are always
/// detected; word transpositions are caught by the rotation.
pub fn integrity_checksum(words: impl IntoIterator<Item = u64>) -> u64 {
    words.into_iter().fold(0u64, |c, w| c.rotate_left(1) ^ w)
}

/// The pipelined-memory shared-buffer switch, word-accurate.
#[derive(Debug)]
pub struct PipelinedSwitch {
    cfg: SwitchConfig,
    stages: usize,
    banks: Vec<SramBank>,
    /// Committed input latch values, flat row-major: entry
    /// `input * stages + stage`. One contiguous allocation keeps the
    /// per-wave latch fetch a single indexed load.
    latches: Vec<u64>,
    /// Latch loads scheduled this cycle: `(input, stage, word)`.
    latch_loads: Vec<(usize, usize, u64)>,
    inputs: Vec<InputState>,
    outreg_cur: Vec<Option<OutWord>>,
    outreg_next: Vec<Option<OutWord>>,
    /// Earliest cycle each output may initiate its next read.
    out_next_init: Vec<Cycle>,
    /// Egress payload-verification state per output link.
    out_verify: Vec<OutVerify>,
    /// Injected stuck-stage-control fault: `(stage, until_cycle)` — bank
    /// writes at that stage are suppressed through `until_cycle`.
    stuck_write: Option<(usize, Cycle)>,
    /// Spare bank columns held in reserve for hot failover.
    spares: Vec<SramBank>,
    /// Declared recovery outages (failover settle spans, degraded-mode
    /// shedding); loss inside a window is excused by the oracle.
    recovery_windows: RecoveryWindows,
    /// Any recovery machinery armed (one precomputed flag so the
    /// disabled path pays a single predictable branch per header).
    recovery_on: bool,
    /// Spares exhausted and a bank over threshold: admission permanently
    /// capped at `admission_cap`.
    degraded: bool,
    /// Occupancy ceiling for new admissions (normally `slots`).
    admission_cap: usize,
    /// Cycles of admission pause charged per failover (settle time).
    degrade_len: u64,
    /// Stage whose bank crossed the correction threshold mid-wave; the
    /// failover runs after the stage walk (the wave borrow forbids it
    /// inline).
    pending_failover: Option<usize>,
    mgr: BufferManager,
    /// The buffer-sharing policy (admission/preemption decisions).
    policy: PolicyEngine,
    /// Cached `policy.is_static()` — the header path branches on this
    /// once per arrival to keep the static pool at its pre-policy cost.
    policy_static: bool,
    /// Scratch for the policy's live queue-length view (cold path).
    scratch_qlens: Vec<usize>,
    arb: Arbiter,
    /// Active waves as a ring indexed by `start % stages`. A wave lives
    /// exactly `stages` cycles and at most one initiates per cycle, so
    /// live slots never collide; retirement clears exactly one slot per
    /// cycle (the one whose wave entered `stages` cycles ago) — no
    /// per-cycle scan-and-shift.
    waves: Vec<Option<ActiveWave>>,
    /// Live entries in the wave ring.
    waves_live: usize,
    /// Live wave ring slots as a machine word: bit `k` set when
    /// `waves[k]` is occupied. Maintained for `stages ≤ 128`; wider
    /// fabrics fall back to walking the ring.
    wave_mask: u128,
    /// Output-register-row occupancy as a machine word: bit `k` set when
    /// `outreg_cur[k]` holds a word. Maintained for `stages ≤ 128`;
    /// wider fabrics fall back to scanning the row.
    outreg_mask: u128,
    cycle: Cycle,
    counters: SwitchCounters,
    probe: Option<ProbeHandle>,
    /// Last occupancy / queue-depth gauges emitted (probe attached only;
    /// gauges are emitted on change, not per cycle).
    last_occ: u64,
    last_qdepth: Vec<u64>,
    last_controls: Vec<StageCtrl>,
    /// Stages whose `last_controls` entry is non-Nop: bit `k` set when
    /// stage `k` executed a control last cycle, so the per-cycle reset
    /// touches only those entries (maintained for `stages ≤ 128`).
    ctrl_mask: u128,
    /// Reusable per-cycle scratch (hot path: one `tick` per simulated
    /// cycle — these must not allocate in steady state).
    wire_out: Vec<Option<u64>>,
    scratch_reads: Vec<ReadReq>,
    scratch_writes: Vec<WriteReq>,
    scratch_dsts: Vec<PortId>,
}

impl PipelinedSwitch {
    /// Build a switch from a validated configuration.
    pub fn new(cfg: SwitchConfig) -> Self {
        cfg.validate();
        let stages = cfg.stages();
        // Banks carry full 64-bit payload words; `cfg.word_bits` is the
        // physical width used for capacity/throughput accounting (and by
        // `vlsimodel`), not a functional truncation — truncating payloads
        // would only obscure data-integrity checks.
        let mut banks: Vec<SramBank> = (0..stages)
            .map(|_| SramBank::new(cfg.slots, 64, PortKind::SinglePort))
            .collect();
        let mut spares: Vec<SramBank> = (0..cfg.recovery.spare_banks)
            .map(|_| SramBank::new(cfg.slots, 64, PortKind::SinglePort))
            .collect();
        if cfg.recovery.ecc {
            for b in banks.iter_mut().chain(spares.iter_mut()) {
                b.enable_ecc();
            }
        }
        PipelinedSwitch {
            stages,
            banks,
            latches: vec![0; cfg.n_in * stages],
            latch_loads: Vec::new(),
            inputs: vec![InputState::default(); cfg.n_in],
            outreg_cur: vec![None; stages],
            outreg_next: vec![None; stages],
            out_next_init: vec![0; cfg.n_out],
            out_verify: vec![OutVerify::default(); cfg.n_out],
            stuck_write: None,
            spares,
            recovery_windows: RecoveryWindows::new(),
            recovery_on: cfg.recovery.enabled(),
            degraded: false,
            admission_cap: cfg.slots,
            pending_failover: None,
            degrade_len: if cfg.recovery.degrade_window == 0 {
                // Natural settle time of one failover: the spare copies
                // one slot per cycle — a full column sweep.
                cfg.slots as u64
            } else {
                cfg.recovery.degrade_window
            },
            mgr: BufferManager::new(cfg.slots, cfg.n_out),
            policy: cfg.policy.engine(cfg.n_out, stages),
            policy_static: cfg.policy.is_static(),
            scratch_qlens: Vec::with_capacity(cfg.n_out),
            arb: Arbiter::new(cfg.arbiter),
            waves: vec![None; stages],
            waves_live: 0,
            wave_mask: 0,
            outreg_mask: 0,
            cycle: 0,
            counters: SwitchCounters::default(),
            probe: None,
            last_occ: 0,
            last_qdepth: vec![0; cfg.n_out],
            last_controls: vec![StageCtrl::Nop; stages],
            ctrl_mask: 0,
            wire_out: vec![None; cfg.n_out],
            scratch_reads: Vec::with_capacity(cfg.n_out),
            scratch_writes: Vec::with_capacity(cfg.n_in),
            scratch_dsts: Vec::with_capacity(cfg.n_out),
            cfg,
        }
    }

    /// Build a switch with telemetry per `tel`: returns the switch and
    /// the attached recorder (if `tel` enables one).
    pub fn with_telemetry(
        cfg: SwitchConfig,
        tel: &TelemetryConfig,
    ) -> (Self, Option<SharedRecorder>) {
        let mut sw = Self::new(cfg);
        let rec = tel.recorder();
        if let Some(r) = &rec {
            sw.attach_probe(r.handle());
        }
        (sw, rec)
    }

    /// Attach a probe sink; every subsequent tick streams structured
    /// [`ProbeEvent`]s into it. With no probe attached the emission sites
    /// cost one predictable branch each (the perf gate holds this).
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Aggregate counters.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// The configuration this switch was built with.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Current cycle (the one the next `tick` will execute).
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Buffer occupancy in packets.
    pub fn occupancy(&self) -> usize {
        self.mgr.occupancy()
    }

    /// Cold path: one non-static admission decision. Returns true when
    /// the arrival may take a slot (a preemption has already freed one
    /// if the policy demanded it). An associated function over disjoint
    /// field borrows, because the header loop holds the input state.
    /// Mirrors the behavioral model's `policy_admit`: the view
    /// (occupancy, live queue lengths) and the evictability rule (write
    /// wave fully retired, no copy in transmission) are computed
    /// identically, so the two models stay cycle-exact under every
    /// policy.
    #[allow(clippy::too_many_arguments)]
    fn policy_admit(
        policy: &mut PolicyEngine,
        mgr: &mut BufferManager,
        counters: &mut SwitchCounters,
        probe: &Option<ProbeHandle>,
        qlens: &mut Vec<usize>,
        n_out: usize,
        slots: usize,
        stages: usize,
        dst: usize,
        c: Cycle,
    ) -> bool {
        let s = stages as Cycle;
        qlens.clear();
        qlens.extend((0..n_out).map(|j| mgr.queue_len_live(PortId(j))));
        let decision = policy.admit(&PolicyView {
            occupancy: mgr.occupancy(),
            capacity: slots,
            n_out,
            dst,
            qlens,
        });
        match decision {
            AdmitDecision::Accept => true,
            AdmitDecision::Reject => false,
            AdmitDecision::Preempt { victim } => {
                // Evictable: the write wave has fully retired (freeing a
                // slot mid-write would let the reallocated address
                // collide with the in-flight wave) and no copy's read
                // has initiated (refs still equals the fanout).
                let addr = mgr.rearmost_matching(PortId(victim), |d, refs| {
                    d.write_start.is_some_and(|ws| c >= ws + s) && refs == d.fanout()
                });
                match addr {
                    Some(a) => {
                        let d = mgr.evict(a);
                        counters.policy_preempts += 1;
                        if let Some(p) = probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: d.id,
                                    reason: DropReason::Preempted,
                                },
                            );
                        }
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// The per-stage control signals of the most recently executed cycle
    /// (the fig. 5 table row).
    pub fn stage_controls(&self) -> &[StageCtrl] {
        &self.last_controls
    }

    /// Fault injection (testbench only): flip `mask` bits in bank
    /// `stage` at buffer address `addr`, as a single-event upset would.
    /// The fault-injection suite uses this to prove the end-to-end
    /// integrity checks detect storage corruption.
    ///
    /// Returns `Some(packet_id)` when the flipped word is *live* packet
    /// data — already deposited by a buffered packet's write wave, or
    /// still ahead of an in-flight read wave — i.e. the upset can reach a
    /// reader. Upsets landing in unoccupied or already-consumed storage
    /// are harmless and return `None`; campaigns use this to compute
    /// detection coverage over *effective* faults only.
    pub fn inject_bank_fault(&mut self, stage: usize, addr: Addr, mask: u64) -> Option<u64> {
        self.banks[stage].inject_fault(addr, mask);
        if let Some(d) = self.mgr.descriptor(addr) {
            // The write wave touches `stage` at cycle `ws + stage`; the
            // word is in the bank once that cycle has executed.
            if d.write_start
                .is_some_and(|ws| ws + (stage as Cycle) < self.cycle)
            {
                return Some(d.id);
            }
        }
        // Slot already freed (read-initiated), but a read wave may still
        // be on its way to this stage.
        self.waves
            .iter()
            .flatten()
            .find(|w| w.addr == addr && w.start + stage as Cycle >= self.cycle)
            .and_then(|w| w.read_to.as_ref())
            .map(|rb| rb.id)
    }

    /// Fault injection (testbench only): stick the write-control signal
    /// of `stage` low through cycle `until` — bank writes at that stage
    /// are suppressed (counted in `writes_suppressed`), leaving a stale
    /// word in every slot written while the fault is active.
    pub fn force_stuck_write(&mut self, stage: usize, until: Cycle) {
        assert!(stage < self.stages, "no such stage");
        self.stuck_write = Some((stage, until));
    }

    /// Checksum of slot `addr` as currently stored across the banks
    /// (stage 0 first — the same fold order as the ingress computation).
    fn banks_checksum(&self, addr: Addr) -> u64 {
        integrity_checksum(self.banks.iter().map(|b| b.peek(addr)))
    }

    /// ECC scrub of a fully written slot, stage by stage, correcting
    /// single-bit upsets in place before the checksum verdict is taken.
    /// Rides the sense amplifiers of the scheduled access — no port cost.
    /// Banks that accumulate corrections past the failover threshold are
    /// hot-swapped for a spare.
    fn scrub_slot(&mut self, addr: Addr, c: Cycle) {
        for k in 0..self.stages {
            match self.banks[k].scrub(addr) {
                EccOutcome::Clean => continue,
                EccOutcome::Corrected { bit } => {
                    self.counters.ecc_corrected += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Recovery {
                                tag: RecoveryTag::EccCorrected,
                                index: k,
                                info: u64::from(bit),
                            },
                        );
                    }
                    if self.cfg.recovery.failover_threshold > 0
                        && self.banks[k].ecc_corrections() >= self.cfg.recovery.failover_threshold
                    {
                        self.fail_over(k, c);
                    }
                }
                EccOutcome::Uncorrectable => {
                    self.counters.ecc_uncorrectable += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Recovery {
                                tag: RecoveryTag::EccUncorrectable,
                                index: k,
                                info: addr.index() as u64,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Mask out the failing bank at `stage`: promote a spare column in
    /// its place (contents copied, check codes recomputed) and declare a
    /// `degrade_len`-cycle settle window during which admission pauses.
    /// With the reserve exhausted, the switch instead enters *permanent*
    /// degraded mode: admission capacity is halved, trading throughput
    /// for continued conservation and per-flow FIFO.
    fn fail_over(&mut self, stage: usize, c: Cycle) {
        match self.spares.pop() {
            Some(mut spare) => {
                spare.copy_contents_from(&self.banks[stage]);
                self.banks[stage] = spare;
                self.counters.bank_failovers += 1;
                self.recovery_windows.open(c, self.degrade_len);
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Recovery {
                            tag: RecoveryTag::BankFailover,
                            index: stage,
                            info: self.spares.len() as u64,
                        },
                    );
                    p.emit(
                        c,
                        ProbeEvent::Recovery {
                            tag: RecoveryTag::DegradedEnter,
                            index: stage,
                            info: self.degrade_len,
                        },
                    );
                }
            }
            None => {
                if !self.degraded {
                    self.degraded = true;
                    self.admission_cap = (self.cfg.slots / 2).max(1);
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Recovery {
                                tag: RecoveryTag::DegradedEnter,
                                index: stage,
                                info: self.admission_cap as u64,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Is the switch in permanent degraded mode (spares exhausted,
    /// admission capped)?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Spare bank columns still in reserve.
    pub fn spares_remaining(&self) -> usize {
        self.spares.len()
    }

    /// The declared-outage ledger accumulated so far.
    pub fn recovery_windows(&self) -> &RecoveryWindows {
        &self.recovery_windows
    }

    /// Aggregate recovery outcome (corrections, failovers, shed packets,
    /// windows) for campaign reporting and the conformance oracle.
    pub fn recovery_report(&self) -> RecoveryReport {
        RecoveryReport {
            corrections: self.counters.ecc_corrected,
            uncorrectable: self.counters.ecc_uncorrectable,
            failovers: self.counters.bank_failovers,
            shed: self.counters.recovery_shed,
            retries: 0,
            retry_give_ups: 0,
            windows: self.recovery_windows.clone(),
        }
    }

    /// True if the switch holds no packets and no waves are in flight
    /// (safe to stop feeding idle cycles).
    pub fn is_quiescent(&self) -> bool {
        let outreg_empty = if self.stages <= 128 {
            self.outreg_mask == 0
        } else {
            self.outreg_cur.iter().all(Option::is_none)
        };
        self.mgr.occupancy() == 0
            && self.waves_live == 0
            && outreg_empty
            && self.inputs.iter().all(|s| s.k == 0 && s.pending.is_empty())
    }

    /// Park a freshly initiated wave in its ring slot.
    #[inline]
    fn push_wave(&mut self, w: ActiveWave) {
        let slot = (w.start % self.stages as Cycle) as usize;
        debug_assert!(self.waves[slot].is_none(), "wave ring slot collision");
        self.waves[slot] = Some(w);
        self.waves_live += 1;
        if let Some(bit) = 1u128.checked_shl(slot as u32) {
            self.wave_mask |= bit;
        }
    }

    /// Execute the live wave in ring slot `this` for cycle `c`: its
    /// single bank access, output-register load, control latch, and
    /// telemetry. Called once per live wave from the stage-execution
    /// walk; the wave's stage is `c - start`.
    fn exec_wave_slot(&mut self, this: usize, c: Cycle, outreg_next_mask: &mut u128) {
        let s = self.stages;
        let Some(w) = &self.waves[this] else { return };
        let k = (c - w.start) as usize;
        debug_assert!(k < s);
        let bank = &mut self.banks[k];
        bank.begin_cycle(c);
        let bus_value = match w.write_from {
            Some(i) => {
                let v = self.latches[i.index() * s + k];
                let stuck = self
                    .stuck_write
                    .is_some_and(|(ks, until)| ks == k && c <= until);
                if stuck {
                    // Stuck stage control: the word never lands in the
                    // bank. The bus still carries it, so a fused
                    // output register samples the correct value — but
                    // the slot keeps a stale word, which the checksum
                    // scrub catches at (store-and-forward) read time.
                    self.counters.writes_suppressed += 1;
                } else {
                    bank.write(w.addr, v)
                        .expect("wave stagger guarantees bank availability");
                }
                Some(v)
            }
            None => None,
        };
        if let Some(rb) = &w.read_to {
            let v = match bus_value {
                // Fused: the output register samples the write bus.
                Some(v) => v,
                None => {
                    // ECC at the moment of access: a cut-through read
                    // reaches banks the initiation-time scrub could not
                    // (the slot was not fully written yet), so the word
                    // is repaired right before it is sampled.
                    if self.cfg.recovery.ecc {
                        match bank.scrub(w.addr) {
                            EccOutcome::Clean => {}
                            EccOutcome::Corrected { bit } => {
                                self.counters.ecc_corrected += 1;
                                if let Some(p) = &self.probe {
                                    p.emit(
                                        c,
                                        ProbeEvent::Recovery {
                                            tag: RecoveryTag::EccCorrected,
                                            index: k,
                                            info: u64::from(bit),
                                        },
                                    );
                                }
                                if self.cfg.recovery.failover_enabled()
                                    && bank.ecc_corrections()
                                        >= self.cfg.recovery.failover_threshold
                                {
                                    self.pending_failover = Some(k);
                                }
                            }
                            EccOutcome::Uncorrectable => {
                                self.counters.ecc_uncorrectable += 1;
                                if let Some(p) = &self.probe {
                                    p.emit(
                                        c,
                                        ProbeEvent::Recovery {
                                            tag: RecoveryTag::EccUncorrectable,
                                            index: k,
                                            info: w.addr.index() as u64,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    bank.read(w.addr)
                        .expect("wave stagger guarantees bank availability")
                }
            };
            debug_assert!(
                self.outreg_next[k].is_none(),
                "two waves loaded output register {k} in cycle {c}"
            );
            self.outreg_next[k] = Some(OutWord {
                link: rb.out,
                word: v,
                tail_of: (k + 1 == s).then_some((rb.id, rb.birth)),
            });
            *outreg_next_mask |= 1u128.checked_shl(k as u32).unwrap_or(0);
        }
        self.last_controls[k] = match (&w.write_from, &w.read_to) {
            (Some(i), None) => StageCtrl::Write {
                addr: w.addr,
                link: *i,
            },
            (None, Some(rb)) => StageCtrl::Read {
                addr: w.addr,
                link: rb.out,
            },
            (Some(i), Some(rb)) => StageCtrl::Fused {
                addr: w.addr,
                input: *i,
                output: rb.out,
            },
            (None, None) => unreachable!("wave with no operation"),
        };
        if let Some(bit) = 1u128.checked_shl(k as u32) {
            self.ctrl_mask |= bit;
        }
        if let Some(p) = &self.probe {
            let op = match (&w.write_from, &w.read_to) {
                (Some(_), None) => WaveDir::Write,
                (None, Some(_)) => WaveDir::Read,
                _ => WaveDir::Fused,
            };
            p.emit(
                c,
                ProbeEvent::BankAccess {
                    stage: k,
                    addr: w.addr.index(),
                    op,
                    input: w.write_from.map(PortId::index),
                    output: w.read_to.as_ref().map(|rb| rb.out.index()),
                },
            );
        }
    }

    /// Drive one committed output-register word onto its link: egress
    /// verification, departure accounting, telemetry.
    fn egress_word(&mut self, c: Cycle, ow: OutWord, wire_out: &mut [Option<u64>]) {
        let j = ow.link.index();
        assert!(
            wire_out[j].is_none(),
            "two output registers drove link {j} in cycle {c}"
        );
        wire_out[j] = Some(ow.word);
        if self.cfg.integrity.payload_check {
            // Egress verification (the modeled link CRC): every word
            // on the wire is checked against the synthesis rule.
            let v = &mut self.out_verify[j];
            if v.k == 0 {
                let (mask, id) = Packet::decode_header_any(ow.word);
                v.id = id;
                v.corrupt = mask & (1 << j) == 0;
            } else if ow.word != Packet::payload_word(v.id, v.k) {
                v.corrupt = true;
            }
            v.k += 1;
        }
        if let Some((id, birth)) = ow.tail_of {
            self.counters.departed += 1;
            if let Some(p) = &self.probe {
                p.emit(
                    c,
                    ProbeEvent::Departed {
                        output: j,
                        id,
                        birth,
                        latency: c - birth,
                    },
                );
            }
            if self.cfg.integrity.payload_check {
                if self.out_verify[j].corrupt {
                    self.counters.corrupt_delivered += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Fault {
                                id,
                                kind: FaultTag::CorruptDelivered,
                            },
                        );
                    }
                }
                self.out_verify[j] = OutVerify::default();
            }
        }
    }

    /// Advance one clock cycle.
    ///
    /// `wire_in[i]` is the word on input link `i` during this cycle.
    /// Returns the words on the output links during this cycle; the
    /// slice borrows internal scratch and is valid until the next tick.
    ///
    /// Packets must be contiguous on each input link (the paper's links
    /// have no mid-packet idles); a `None` inside a packet panics.
    pub fn tick(&mut self, wire_in: &[Option<u64>]) -> &[Option<u64>] {
        assert_eq!(wire_in.len(), self.cfg.n_in, "one word slot per input");
        let c = self.cycle;
        let s = self.stages;

        // ------------------------------------------------------------------
        // 1. Output links driven by the register row committed last cycle.
        // ------------------------------------------------------------------
        // Reuse the output-wire buffer across cycles; `mem::take`
        // sidesteps the simultaneous borrow of the buffer and `&mut self`.
        let mut wire_out = std::mem::take(&mut self.wire_out);
        wire_out.clear();
        wire_out.resize(self.cfg.n_out, None);
        if self.stages <= 128 {
            // Bit-parallel: visit only occupied register slots, in stage
            // order (identical visit order to the full scan).
            let mut m = self.outreg_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                let ow = self.outreg_cur[k].expect("occupancy bit set on empty slot");
                self.egress_word(c, ow, &mut wire_out);
            }
        } else {
            for k in 0..s {
                if let Some(ow) = self.outreg_cur[k] {
                    self.egress_word(c, ow, &mut wire_out);
                }
            }
        }

        // ------------------------------------------------------------------
        // 2. Input arrivals: framing, header decode, slot allocation,
        //    latch-load scheduling.
        // ------------------------------------------------------------------
        self.latch_loads.clear();
        for (i, w) in wire_in.iter().enumerate() {
            let st = &mut self.inputs[i];
            match w {
                Some(word) => {
                    if st.k == 0 {
                        let (mask, id) = Packet::decode_header_any(*word);
                        st.addr = None;
                        st.chk = 0;
                        st.corrupt = false;
                        st.expected_id = None;
                        let bad = mask == 0 || (mask >> self.cfg.n_out) != 0;
                        if bad && self.cfg.integrity.harden {
                            // Hardened framing: a header addressing no
                            // valid output is counted and the packet
                            // swallowed (no slot allocated; the remaining
                            // words fall on the floor at the tail).
                            self.counters.arrived += 1;
                            self.counters.corrupt_drops += 1;
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::Drop {
                                        id,
                                        reason: DropReason::BadHeader,
                                    },
                                );
                            }
                        } else {
                            assert!(
                                !bad,
                                "packet {id} on input {i} addressed nonexistent outputs                              (mask {mask:#x}, {} outputs)",
                                self.cfg.n_out
                            );
                            let desc = Descriptor::multicast(id, PortId(i), mask, c);
                            self.counters.arrived += 1;
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::HeaderArrived {
                                        input: i,
                                        id,
                                        dst: desc.dst.index(),
                                    },
                                );
                            }
                            st.expected_id = self.cfg.integrity.payload_check.then_some(id);
                            st.cur_id = id;
                            // Degraded-mode admission: inside a failover
                            // settle window (or permanently, with spares
                            // exhausted and occupancy at the reduced cap)
                            // new packets are shed at the door instead of
                            // risking the settling spare — conservation
                            // and FIFO hold, throughput drops.
                            let shed = self.recovery_on
                                && (self.recovery_windows.active(c)
                                    || (self.degraded
                                        && self.mgr.occupancy() >= self.admission_cap));
                            if shed && !self.recovery_windows.active(c) {
                                // Permanent-degraded shedding declares
                                // its own (mergeable) outage span.
                                self.recovery_windows.open(c, 0);
                            }
                            // Non-static sharing policy: decide (and
                            // preempt) before touching the free list;
                            // recovery shedding keeps priority over it.
                            let refused = !shed
                                && !self.policy_static
                                && !Self::policy_admit(
                                    &mut self.policy,
                                    &mut self.mgr,
                                    &mut self.counters,
                                    &self.probe,
                                    &mut self.scratch_qlens,
                                    self.cfg.n_out,
                                    self.cfg.slots,
                                    self.stages,
                                    desc.dst.index(),
                                    c,
                                );
                            if refused {
                                self.counters.policy_drops += 1;
                                if let Some(p) = &self.probe {
                                    p.emit(
                                        c,
                                        ProbeEvent::Drop {
                                            id,
                                            reason: DropReason::AdmissionPolicy,
                                        },
                                    );
                                }
                            } else {
                                match if shed { None } else { self.mgr.alloc(desc) } {
                                    Some(addr) => {
                                        st.addr = Some(addr);
                                        st.pending.push_back(PendingWrite {
                                            addr,
                                            eligible: c + 1,
                                            deadline: c + s as Cycle,
                                        });
                                    }
                                    None => {
                                        self.counters.dropped_buffer_full += 1;
                                        if shed {
                                            self.counters.recovery_shed += 1;
                                        }
                                        if let Some(p) = &self.probe {
                                            p.emit(
                                                c,
                                                ProbeEvent::Drop {
                                                    id,
                                                    reason: DropReason::BufferFull,
                                                },
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    } else if let Some(id) = st.expected_id {
                        if *word != Packet::payload_word(id, st.k) {
                            st.corrupt = true;
                        }
                    }
                    st.chk = st.chk.rotate_left(1) ^ *word;
                    self.latch_loads.push((i, st.k, *word));
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::LatchLoad {
                                input: i,
                                stage: st.k,
                            },
                        );
                    }
                    st.k += 1;
                    if st.k == s {
                        st.k = 0;
                        // Tail received: seal the slot with its checksum
                        // (and poison it if the ingress check tripped).
                        // Guard on the id — under cut-through the slot may
                        // already be freed and reallocated to a later
                        // packet, which must not inherit our verdicts.
                        if let Some(addr) = st.addr.take() {
                            let still_ours =
                                self.mgr.descriptor(addr).is_some_and(|d| d.id == st.cur_id);
                            if still_ours {
                                if st.corrupt {
                                    self.mgr.poison(addr, IntegrityReason::PayloadMismatch);
                                }
                                if self.cfg.integrity.checksum {
                                    self.mgr.set_checksum(addr, st.chk);
                                }
                            }
                        }
                        st.expected_id = None;
                    }
                }
                None => {
                    if st.k != 0 && self.cfg.integrity.harden {
                        // Hardened framing: the link idled mid-packet, so
                        // the tail will never arrive. Condemn the partial
                        // packet instead of panicking.
                        if let Some(addr) = st.addr.take() {
                            if let Some(pos) = st.pending.iter().position(|p| p.addr == addr) {
                                // Write wave not yet granted: reclaim the
                                // slot outright.
                                st.pending.remove(pos);
                                let d = self.mgr.release(addr);
                                self.counters.corrupt_drops += 1;
                                if let Some(p) = &self.probe {
                                    p.emit(
                                        c,
                                        ProbeEvent::Drop {
                                            id: d.id,
                                            reason: DropReason::Truncated,
                                        },
                                    );
                                }
                            } else if self.mgr.descriptor(addr).is_some_and(|d| d.id == st.cur_id) {
                                // Write wave already streaming stale latch
                                // words: poison so the read side drops it
                                // (counted there). If the slot was already
                                // freed by a cut-through read, the damage
                                // is on the wire — the egress check is the
                                // remaining line of defense.
                                self.mgr.poison(addr, IntegrityReason::TruncatedPacket);
                            }
                        }
                        st.k = 0;
                        st.chk = 0;
                        st.corrupt = false;
                        st.expected_id = None;
                    } else {
                        assert!(
                            st.k == 0,
                            "link protocol violation: idle cycle inside a packet on input {i}"
                        );
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // 3. Latch-overrun sweep (provably unreachable under the shipped
        //    policies; see module docs).
        // ------------------------------------------------------------------
        for i in 0..self.cfg.n_in {
            while let Some(front) = self.inputs[i].pending.front() {
                if front.deadline >= c {
                    break;
                }
                let addr = front.addr;
                self.inputs[i].pending.pop_front();
                let d = self.mgr.release(addr);
                self.counters.latch_overruns += 1;
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Drop {
                            id: d.id,
                            reason: DropReason::LatchOverrun,
                        },
                    );
                }
            }
        }

        // ------------------------------------------------------------------
        // 4. Arbitration: choose at most one wave to initiate this cycle.
        // ------------------------------------------------------------------
        let mut reads = std::mem::take(&mut self.scratch_reads);
        reads.clear();
        // An empty buffer has no queue heads: skip the per-output scan
        // outright (occupancy is an O(1) counter).
        if self.mgr.occupancy() > 0 {
            for j in 0..self.cfg.n_out {
                if c < self.out_next_init[j] {
                    continue;
                }
                if let Some((_, d)) = self.mgr.head(PortId(j)) {
                    let ready = match d.write_start {
                        None => false,
                        Some(ws) => {
                            if self.cfg.cut_through {
                                ws < c
                            } else {
                                // Store-and-forward: wait until the write
                                // wave has deposited the tail word.
                                c >= ws + s as Cycle
                            }
                        }
                    };
                    if ready {
                        reads.push(ReadReq { port: PortId(j) });
                    }
                }
            }
        }
        let mut writes = std::mem::take(&mut self.scratch_writes);
        writes.clear();
        for (i, st) in self.inputs.iter().enumerate() {
            if let Some(front) = st.pending.front() {
                if front.eligible <= c {
                    writes.push(WriteReq {
                        port: PortId(i),
                        deadline: front.deadline,
                    });
                }
            }
        }
        let had_work = !reads.is_empty() || !writes.is_empty();
        if !reads.is_empty() && !writes.is_empty() {
            // §3.2 collision: the single initiation port must stagger one
            // of the contenders to a later cycle.
            self.counters.rw_collisions += 1;
        }
        let decision = self.arb.decide(&reads, &writes);
        if had_work {
            if let Some(p) = &self.probe {
                let outcome = match decision {
                    Decision::Read(_) => ArbOutcome::Read,
                    Decision::Write(_) => ArbOutcome::Write,
                    Decision::Idle => ArbOutcome::Idle,
                };
                p.emit(
                    c,
                    ProbeEvent::Arbitration {
                        reads: reads.len(),
                        writes: writes.len(),
                        outcome,
                    },
                );
            }
        }
        match decision {
            Decision::Read(j) => {
                let (addr, d, freed) = self.mgr.pop_and_free(j);
                let fully_written = d.write_start.is_some_and(|ws| c >= ws + s as Cycle);
                // With ECC armed, correct single-bit upsets in place
                // *before* the checksum verdict: a corrected slot passes
                // the scrub and is delivered instead of dropped.
                if self.cfg.recovery.ecc && fully_written {
                    self.scrub_slot(addr, c);
                }
                // Integrity scrub at read initiation (the ECC check a real
                // bank performs): only a fully written slot can be
                // verified — cut-through reads start mid-write and rely on
                // the egress check instead.
                let scrub_fail = self.cfg.integrity.checksum
                    && fully_written
                    && d.checksum
                        .is_some_and(|sum| self.banks_checksum(addr) != sum);
                if d.poisoned.is_some() || scrub_fail {
                    // Detect-and-drop: the initiation slot is spent but no
                    // wave launches; the output link stays free for its
                    // next head-of-line packet. Multicast copies each take
                    // this path; count once, when the slot is freed.
                    if freed {
                        self.counters.corrupt_drops += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: d.id,
                                    reason: drop_reason(
                                        d.poisoned.unwrap_or(IntegrityReason::ChecksumMismatch),
                                    ),
                                },
                            );
                        }
                    }
                } else {
                    self.out_next_init[j.index()] = c + s as Cycle;
                    if !self.policy_static {
                        // BShare queueing-delay signal: birth-to-read.
                        self.policy.on_read(j.index(), c - d.birth);
                    }
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::ReadWave {
                                output: j.index(),
                                addr: addr.index(),
                                fused: false,
                            },
                        );
                        // §3.4: any unfused read started later than the
                        // packet's earliest opportunity — the initiation
                        // slot staggered the output's start.
                        let earliest = d.write_start.map(|ws| {
                            if self.cfg.cut_through {
                                ws + 1
                            } else {
                                ws + s as Cycle
                            }
                        });
                        if earliest.is_some_and(|e| c > e) {
                            p.emit(
                                c,
                                ProbeEvent::StaggeredStart {
                                    output: j.index(),
                                    id: d.id,
                                },
                            );
                        }
                        // Cut-through (unfused form): the read overlaps a
                        // write wave still depositing this packet.
                        if d.write_start.is_some_and(|ws| c < ws + s as Cycle) {
                            p.emit(
                                c,
                                ProbeEvent::CutThrough {
                                    output: j.index(),
                                    id: d.id,
                                    fused: false,
                                },
                            );
                        }
                    }
                    self.push_wave(ActiveWave {
                        start: c,
                        addr,
                        write_from: None,
                        read_to: Some(OutBinding {
                            out: j,
                            id: d.id,
                            birth: d.birth,
                        }),
                    });
                }
            }
            Decision::Write(i) => {
                let pw = self.inputs[i.index()]
                    .pending
                    .pop_front()
                    .expect("arbiter granted a write with no pending request");
                self.mgr.mark_write_started(pw.addr, c);
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::WriteWave {
                            input: i.index(),
                            addr: pw.addr.index(),
                        },
                    );
                }
                let mut wave = ActiveWave {
                    start: c,
                    addr: pw.addr,
                    write_from: Some(i),
                    read_to: None,
                };
                // Fused cut-through: if this packet is next in line for an
                // idle destination, one copy's read wave rides the write
                // bus (multicast packets fuse at most one copy; the rest
                // read normally later).
                let d = self.mgr.descriptor(pw.addr).expect("just marked");
                // A packet already condemned at ingress must not fuse: the
                // read side drops it instead.
                if self.cfg.fused_cut_through && d.poisoned.is_none() {
                    let (id, birth) = (d.id, d.birth);
                    let mut dsts = std::mem::take(&mut self.scratch_dsts);
                    dsts.clear();
                    dsts.extend(d.destinations());
                    for &dst in &dsts {
                        if c < self.out_next_init[dst.index()] {
                            continue;
                        }
                        let head_matches = matches!(
                            self.mgr.head(dst),
                            Some((head_addr, _)) if head_addr == pw.addr
                        );
                        if !head_matches {
                            continue;
                        }
                        let (addr2, d2, _freed) = self.mgr.pop_and_free(dst);
                        debug_assert_eq!(addr2, pw.addr);
                        debug_assert_eq!(d2.id, id);
                        self.out_next_init[dst.index()] = c + s as Cycle;
                        if !self.policy_static {
                            // BShare queueing-delay signal (fused read).
                            self.policy.on_read(dst.index(), c - d2.birth);
                        }
                        self.counters.fused_reads += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::ReadWave {
                                    output: dst.index(),
                                    addr: pw.addr.index(),
                                    fused: true,
                                },
                            );
                            p.emit(
                                c,
                                ProbeEvent::CutThrough {
                                    output: dst.index(),
                                    id,
                                    fused: true,
                                },
                            );
                        }
                        wave.read_to = Some(OutBinding {
                            out: dst,
                            id,
                            birth,
                        });
                        break;
                    }
                    self.scratch_dsts = dsts;
                }
                self.push_wave(wave);
            }
            Decision::Idle => {
                if had_work {
                    // Requests existed but none was servable — possible
                    // only with a broken policy; diagnostic.
                    self.counters.idle_with_work += 1;
                }
            }
        }
        self.scratch_reads = reads;
        self.scratch_writes = writes;

        // ------------------------------------------------------------------
        // 5. Stage execution: every active wave performs its per-stage
        //    operation on the (port-checked) banks.
        // ------------------------------------------------------------------
        // Clear only the control entries set last cycle (their stages are
        // tracked in `ctrl_mask`); wider fabrics reset the whole row.
        if s <= 128 {
            let mut m = self.ctrl_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                self.last_controls[k] = StageCtrl::Nop;
            }
        } else {
            for ctrl in self.last_controls.iter_mut() {
                *ctrl = StageCtrl::Nop;
            }
        }
        self.ctrl_mask = 0;
        // Visit live waves oldest-first (ascending start — the same order
        // the retired Vec kept), walking the ring from slot (c+1) % s.
        // Banks begin their cycle lazily, right before their single
        // access: `begin_cycle` is idempotent and wave starts are unique
        // per cycle, so each live wave touches a distinct bank and the
        // port-violation budget is identical to eagerly resetting every
        // bank.
        let mut outreg_next_mask: u128 = 0;
        if self.waves_live > 0 {
            if s <= 128 {
                // Bit-parallel: visit only the occupied ring slots. The
                // two mask passes — bits ≥ first, then bits < first, each
                // ascending — reproduce the wrapping ring order exactly.
                let first = ((c + 1) % s as Cycle) as usize;
                let low = (1u128 << first) - 1;
                for mut m in [self.wave_mask & !low, self.wave_mask & low] {
                    while m != 0 {
                        let this = m.trailing_zeros() as usize;
                        m &= m - 1;
                        self.exec_wave_slot(this, c, &mut outreg_next_mask);
                    }
                }
            } else {
                let mut slot = ((c + 1) % s as Cycle) as usize;
                for _ in 0..s {
                    let this = slot;
                    slot += 1;
                    if slot == s {
                        slot = 0;
                    }
                    if self.waves[this].is_some() {
                        self.exec_wave_slot(this, c, &mut outreg_next_mask);
                    }
                }
            }
        }

        // A bank crossed its correction threshold during the stage walk:
        // hot-swap it now, before the clock edge (the spare copies the
        // bank's contents, so in-flight slots survive the swap).
        if let Some(k) = self.pending_failover.take() {
            self.fail_over(k, c);
        }

        // ------------------------------------------------------------------
        // 6. Clock edge: commit latches and output registers, retire
        //    completed waves, advance time.
        // ------------------------------------------------------------------
        for &(i, k, word) in &self.latch_loads {
            self.latches[i * s + k] = word;
        }
        std::mem::swap(&mut self.outreg_cur, &mut self.outreg_next);
        // Clear only the slots the old register row occupied (the new
        // row's occupancy word was built during stage execution).
        if self.stages <= 128 {
            let mut m = self.outreg_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                self.outreg_next[k] = None;
            }
        } else {
            for o in self.outreg_next.iter_mut() {
                *o = None;
            }
        }
        self.outreg_mask = outreg_next_mask;
        // Retire the wave that entered `s` cycles ago: its ring slot is
        // the one a wave starting next cycle would claim.
        let retire_slot = ((c + 1) % s as Cycle) as usize;
        if let Some(w) = &self.waves[retire_slot] {
            if (c - w.start) as usize + 1 >= s {
                self.waves[retire_slot] = None;
                self.waves_live -= 1;
                if let Some(bit) = 1u128.checked_shl(retire_slot as u32) {
                    self.wave_mask &= !bit;
                }
            }
        }
        if let Some(p) = &self.probe {
            let occ = self.mgr.occupancy() as u64;
            if occ != self.last_occ {
                self.last_occ = occ;
                p.emit(
                    c,
                    ProbeEvent::Gauge {
                        gauge: GaugeKind::Occupancy,
                        index: 0,
                        value: occ,
                    },
                );
            }
            for j in 0..self.cfg.n_out {
                let depth = self.mgr.queue_len(PortId(j)) as u64;
                if depth != self.last_qdepth[j] {
                    self.last_qdepth[j] = depth;
                    p.emit(
                        c,
                        ProbeEvent::Gauge {
                            gauge: GaugeKind::QueueDepth,
                            index: j,
                            value: depth,
                        },
                    );
                }
            }
        }
        self.cycle = c + 1;
        self.wire_out = wire_out;
        &self.wire_out
    }

    /// Run `n` idle cycles (no input words), collecting outputs via `f`.
    pub fn idle_cycles(&mut self, n: usize, mut f: impl FnMut(Cycle, &[Option<u64>])) {
        let empty = vec![None; self.cfg.n_in];
        for _ in 0..n {
            let c = self.cycle;
            let out = self.tick(&empty);
            f(c, out);
        }
    }
}

impl simkernel::Horizon for PipelinedSwitch {
    fn now(&self) -> Cycle {
        self.cycle
    }

    /// The word-level model keeps too much intertwined per-cycle state
    /// (latch rows, bank port checks, egress verification) to derive a
    /// fine-grained horizon safely, so it reports the coarsest correct
    /// one: quiescent-forever or event-now. That still buys the big win —
    /// the conformance driver's inter-burst gaps, where the switch sits
    /// completely empty.
    fn next_event(&self) -> Option<Cycle> {
        if self.is_quiescent() {
            None
        } else {
            Some(self.cycle)
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.cycle, "jump_to moves time forward only");
        debug_assert!(
            self.is_quiescent(),
            "the RTL model only skips quiescent spans"
        );
        // A quiescent switch ticking idle input changes nothing but the
        // clock; mirror what dense idle ticks would leave behind.
        for w in &mut self.wire_out {
            *w = None;
        }
        for ctrl in &mut self.last_controls {
            *ctrl = StageCtrl::Nop;
        }
        self.ctrl_mask = 0;
        self.cycle = target;
    }
}

impl simkernel::BatchTick for PipelinedSwitch {
    /// The word-level model has no fused multi-cycle kernel (every
    /// cycle touches latch rows and bank ports), so the batch entry is
    /// a plain idle-tick loop: the driver-side win (no per-cycle
    /// horizon query) still applies, the model-side fusion does not.
    fn tick_idle_batch(&mut self, n: u64) {
        let empty = vec![None; self.cfg.n_in];
        for _ in 0..n {
            self.tick(&empty);
        }
    }
}

/// A packet reassembled from an output link by [`OutputCollector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredPacket {
    /// Output link it emerged on.
    pub output: PortId,
    /// Packet id decoded from the delivered header.
    pub id: u64,
    /// Primary (lowest) destination decoded from the delivered header;
    /// for unicast packets this should equal `output` (asserted by
    /// tests), for multicast `output` is some member of `dsts_mask`.
    pub dst: PortId,
    /// Full destination bitmask decoded from the header.
    pub dsts_mask: u32,
    /// All `stages` words as delivered.
    pub words: Vec<u64>,
    /// Cycle the first word appeared on the link.
    pub first_cycle: Cycle,
    /// Cycle the tail word appeared on the link.
    pub last_cycle: Cycle,
}

impl DeliveredPacket {
    /// Check the payload against the deterministic synthesis rule of
    /// [`Packet::synth`]/[`Packet::synth_multicast`] — detects any
    /// datapath corruption or word misordering — and that this copy
    /// emerged on a link the header actually addressed.
    pub fn verify_payload(&self) -> bool {
        let (mask, id) = Packet::decode_header_any(self.words[0]);
        mask & (1 << self.output.index()) != 0
            && id == self.id
            && self.words[1..]
                .iter()
                .enumerate()
                .all(|(i, &w)| w == Packet::payload_word(self.id, i + 1))
    }
}

/// Reassembles the word streams of the output links into packets.
#[derive(Debug)]
pub struct OutputCollector {
    packet_words: usize,
    partial: Vec<Vec<(Cycle, u64)>>,
    done: Vec<DeliveredPacket>,
}

impl OutputCollector {
    /// A collector for `n_out` links carrying `packet_words`-word packets.
    pub fn new(n_out: usize, packet_words: usize) -> Self {
        OutputCollector {
            packet_words,
            partial: vec![Vec::new(); n_out],
            done: Vec::new(),
        }
    }

    /// Feed the output words of one cycle.
    pub fn observe(&mut self, cycle: Cycle, wire_out: &[Option<u64>]) {
        for (j, w) in wire_out.iter().enumerate() {
            match w {
                Some(word) => {
                    self.partial[j].push((cycle, *word));
                    if self.partial[j].len() == self.packet_words {
                        let words: Vec<u64> = self.partial[j].iter().map(|&(_, w)| w).collect();
                        let (mask, id) = Packet::decode_header_any(words[0]);
                        let first_cycle = self.partial[j][0].0;
                        let last_cycle = self.partial[j].last().expect("non-empty").0;
                        self.done.push(DeliveredPacket {
                            output: PortId(j),
                            id,
                            dst: PortId(mask.trailing_zeros() as usize),
                            dsts_mask: mask,
                            words,
                            first_cycle,
                            last_cycle,
                        });
                        self.partial[j].clear();
                    }
                }
                None => {
                    assert!(
                        self.partial[j].is_empty(),
                        "output link {j} idled mid-packet at cycle {cycle}"
                    );
                }
            }
        }
    }

    /// Completed packets so far (drains).
    pub fn take(&mut self) -> Vec<DeliveredPacket> {
        std::mem::take(&mut self.done)
    }

    /// Completed packets so far (borrow).
    pub fn delivered(&self) -> &[DeliveredPacket] {
        &self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::cell::Packet;

    /// Drive a 2×2 switch (4 stages, 4-word packets) with one packet and
    /// return (delivered packets, trace copy, counters).
    fn run_single_packet(cfg: SwitchConfig) -> (Vec<DeliveredPacket>, PipelinedSwitch) {
        let mut sw = PipelinedSwitch::new(cfg);
        let s = sw.config().stages();
        let p = Packet::synth(7, 0, 1, s, 0);
        let mut col = OutputCollector::new(sw.config().n_out, s);
        // Feed the packet on input 0, then idle until quiescent.
        for k in 0..s {
            let mut wire = vec![None; sw.config().n_in];
            wire[0] = Some(p.words[k]);
            let c = sw.now();
            let out = sw.tick(&wire);
            col.observe(c, out);
        }
        for _ in 0..4 * s {
            let c = sw.now();
            let out = sw.tick(&vec![None; sw.config().n_in]);
            col.observe(c, out);
        }
        let pkts = col.take();
        (pkts, sw)
    }

    #[test]
    fn single_packet_delivered_intact() {
        let (pkts, sw) = run_single_packet(SwitchConfig::symmetric(2, 8));
        assert_eq!(pkts.len(), 1);
        let d = &pkts[0];
        assert_eq!(d.output, PortId(1));
        assert_eq!(d.id, 7);
        assert!(d.verify_payload(), "payload corrupted: {:?}", d.words);
        let ctr = sw.counters();
        assert_eq!(ctr.arrived, 1);
        assert_eq!(ctr.departed, 1);
        assert_eq!(ctr.latch_overruns, 0);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn fused_cut_through_latency_is_two_cycles() {
        // Paper §3.3: header arrives at a (here 0), write wave at a+1
        // fuses the read; first word leaves "in the very next cycle",
        // a+2.
        let (pkts, sw) = run_single_packet(SwitchConfig::symmetric(2, 8));
        assert_eq!(pkts[0].first_cycle, 2, "cut-through first word at a+2");
        assert_eq!(sw.counters().fused_reads, 1);
    }

    #[test]
    fn unfused_cut_through_latency_is_three_cycles() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.fused_cut_through = false;
        let (pkts, sw) = run_single_packet(cfg);
        // Write wave at 1, read wave at 2, first word out at 3.
        assert_eq!(pkts[0].first_cycle, 3);
        assert_eq!(sw.counters().fused_reads, 0);
    }

    #[test]
    fn store_and_forward_latency() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        let (pkts, _) = run_single_packet(cfg);
        // Write wave at ws=1 completes its tail at ws+S-1 = 4; the read
        // may initiate at ws+S = 5; first word out at 6 = 2 + S.
        let s = 4;
        assert_eq!(pkts[0].first_cycle, (2 + s) as u64);
    }

    #[test]
    fn tail_never_sent_before_it_arrived() {
        // The §3.3 safety property: transmission of the tail is attempted
        // only after the tail has been written into the rightmost input
        // latch. With fused cut-through the tail departs exactly 2 cycles
        // after it arrives.
        let (pkts, _) = run_single_packet(SwitchConfig::symmetric(2, 8));
        let s = 4u64;
        let tail_arrival = s - 1; // word k arrives at cycle k
        assert_eq!(pkts[0].last_cycle, tail_arrival + 2);
        assert!(pkts[0].last_cycle > tail_arrival);
    }

    #[test]
    fn contending_packets_both_delivered_in_fifo_order() {
        // Two packets to the same output, arriving simultaneously on
        // different inputs: one cuts through, the other queues behind it.
        let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(2, 8));
        let s = 4;
        let p0 = Packet::synth(10, 0, 0, s, 0);
        let p1 = Packet::synth(11, 1, 0, s, 0);
        let mut col = OutputCollector::new(2, s);
        for k in 0..s {
            let wire = vec![Some(p0.words[k]), Some(p1.words[k])];
            let c = sw.now();
            let out = sw.tick(&wire);
            col.observe(c, out);
        }
        for _ in 0..6 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        let pkts = col.take();
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| p.verify_payload()));
        // Output 0 transmits them back to back: the second starts right
        // after the first ends.
        assert_eq!(pkts[1].first_cycle, pkts[0].last_cycle + 1);
        assert_eq!(sw.counters().departed, 2);
        assert_eq!(sw.counters().latch_overruns, 0);
    }

    #[test]
    fn buffer_full_drops_and_recovers() {
        // 1-slot buffer, two simultaneous arrivals: the second is dropped,
        // the first is delivered, and the switch keeps working.
        let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(2, 1));
        let s = 4;
        let p0 = Packet::synth(1, 0, 0, s, 0);
        let p1 = Packet::synth(2, 1, 1, s, 0);
        let mut col = OutputCollector::new(2, s);
        for k in 0..s {
            let wire = vec![Some(p0.words[k]), Some(p1.words[k])];
            let c = sw.now();
            let out = sw.tick(&wire);
            col.observe(c, out);
        }
        for _ in 0..6 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        let pkts = col.take();
        assert_eq!(pkts.len(), 1);
        assert_eq!(sw.counters().dropped_buffer_full, 1);
        assert_eq!(sw.counters().departed, 1);
        // A later packet still goes through.
        let p2 = Packet::synth(3, 1, 0, s, 0);
        for k in 0..s {
            let wire = vec![None, Some(p2.words[k])];
            let c = sw.now();
            let out = sw.tick(&wire);
            col.observe(c, out);
        }
        for _ in 0..6 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        let pkts = col.take();
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].verify_payload());
    }

    #[test]
    fn stage_controls_report_wave_progression() {
        let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(2, 8));
        let s = 4;
        let p = Packet::synth(7, 0, 1, s, 0);
        // Cycle 0: header arrives, nothing initiated yet.
        let mut wire = vec![Some(p.words[0]), None];
        sw.tick(&wire);
        assert_eq!(sw.stage_controls()[0], StageCtrl::Nop);
        // Cycle 1: fused write+cut-through initiates at stage 0.
        wire[0] = Some(p.words[1]);
        sw.tick(&wire);
        assert!(matches!(sw.stage_controls()[0], StageCtrl::Fused { .. }));
        // Cycle 2: the wave is at stage 1.
        wire[0] = Some(p.words[2]);
        sw.tick(&wire);
        assert!(matches!(sw.stage_controls()[1], StageCtrl::Fused { .. }));
        assert_eq!(sw.stage_controls()[0], StageCtrl::Nop);
    }

    /// Feed `packets` word-streams back to back on input 0, then idle to
    /// quiescence; returns delivered packets and the switch.
    fn feed_and_drain(
        mut sw: PipelinedSwitch,
        words: &[u64],
    ) -> (Vec<DeliveredPacket>, PipelinedSwitch) {
        let s = sw.config().stages();
        let mut col = OutputCollector::new(sw.config().n_out, s);
        for &w in words {
            let c = sw.now();
            let out = sw.tick(&[Some(w), None]);
            col.observe(c, out);
        }
        for _ in 0..8 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        (col.take(), sw)
    }

    #[test]
    fn hardened_bad_header_is_swallowed_and_flow_continues() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.integrity.harden = true;
        let sw = PipelinedSwitch::new(cfg);
        let s = 4;
        let bad = Packet::encode_header(5, 1); // output 5 of a 2×2
        let good = Packet::synth(9, 0, 1, s, 0);
        let mut words = vec![bad, 0, 0, 0];
        words.extend_from_slice(&good.words);
        let (pkts, sw) = feed_and_drain(sw, &words);
        assert_eq!(pkts.len(), 1, "only the good packet emerges");
        assert_eq!(pkts[0].id, 9);
        assert!(pkts[0].verify_payload());
        let ctr = sw.counters();
        assert_eq!(ctr.corrupt_drops, 1);
        assert_eq!(ctr.departed, 1);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn hardened_truncation_is_dropped_and_flow_continues() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.integrity.harden = true;
        let mut sw = PipelinedSwitch::new(cfg);
        let s = 4;
        let cut = Packet::synth(3, 0, 0, s, 0);
        let mut col = OutputCollector::new(2, s);
        // Two words of the packet, then the link goes dead mid-packet.
        for k in 0..2 {
            let c = sw.now();
            let out = sw.tick(&[Some(cut.words[k]), None]);
            col.observe(c, out);
        }
        for _ in 0..8 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        // A fused read may already be streaming the truncated packet when
        // the link dies; its copy is poisoned and dropped at read time
        // only if the read had not launched. Either way the switch
        // settles, counts the loss, and keeps working.
        let good = Packet::synth(4, 0, 1, s, 0);
        for k in 0..s {
            let c = sw.now();
            let out = sw.tick(&[Some(good.words[k]), None]);
            col.observe(c, out);
        }
        for _ in 0..8 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        let delivered: Vec<_> = col.take();
        assert!(delivered.iter().any(|p| p.id == 4 && p.verify_payload()));
        assert!(sw.is_quiescent());
        assert_eq!(sw.counters().in_flight(), 0, "loss is fully accounted");
    }

    #[test]
    fn tampered_payload_dropped_in_store_and_forward() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        cfg.integrity.payload_check = true;
        let sw = PipelinedSwitch::new(cfg);
        let s = 4;
        let mut p = Packet::synth(7, 0, 1, s, 0);
        p.words[2] ^= 1; // corrupt on the input wire
        let (pkts, sw) = feed_and_drain(sw, &p.words);
        assert!(pkts.is_empty(), "condemned before the read launches");
        assert_eq!(sw.counters().corrupt_drops, 1);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn tampered_payload_flagged_at_egress_under_cut_through() {
        // With fused cut-through the read wave is already streaming when
        // the ingress check trips — too late to drop; the egress check
        // (the modeled link CRC) flags the delivery instead.
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.integrity.payload_check = true;
        let sw = PipelinedSwitch::new(cfg);
        let s = 4;
        let mut p = Packet::synth(7, 0, 1, s, 0);
        p.words[2] ^= 1;
        let (pkts, sw) = feed_and_drain(sw, &p.words);
        assert_eq!(pkts.len(), 1, "already on the wire");
        assert!(!pkts[0].verify_payload());
        assert_eq!(sw.counters().corrupt_delivered, 1);
        assert_eq!(sw.counters().corrupt_drops, 0);
    }

    #[test]
    fn bank_upset_caught_by_scrub_and_liveness_reported() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        let mut sw = PipelinedSwitch::new(cfg);
        let s = 4;
        let p = Packet::synth(7, 0, 1, s, 0);
        for k in 0..s {
            sw.tick(&[Some(p.words[k]), None]);
        }
        // Packet fully buffered, read not yet launched: flip one bit of
        // its stage-2 word wherever it lives.
        let mut hit = None;
        for a in 0..8 {
            if let Some(id) = sw.inject_bank_fault(2, Addr(a), 1) {
                hit = Some(id);
            }
        }
        assert_eq!(hit, Some(7), "exactly one slot held live data");
        let mut col = OutputCollector::new(2, s);
        for _ in 0..8 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        assert!(col.take().is_empty(), "scrub dropped the packet");
        assert_eq!(sw.counters().corrupt_drops, 1);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn ecc_corrects_bank_upset_and_delivers_the_packet() {
        // Same strike as bank_upset_caught_by_scrub…, but with recovery
        // armed: the single-bit upset is corrected in place and the
        // packet departs intact instead of being condemned.
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        cfg.recovery = crate::recovery::RecoveryConfig::ecc_only();
        let mut sw = PipelinedSwitch::new(cfg);
        let s = 4;
        let p = Packet::synth(7, 0, 1, s, 0);
        for k in 0..s {
            sw.tick(&[Some(p.words[k]), None]);
        }
        let mut hit = None;
        for a in 0..8 {
            if let Some(id) = sw.inject_bank_fault(2, Addr(a), 1) {
                hit = Some(id);
            }
        }
        assert_eq!(hit, Some(7));
        let mut col = OutputCollector::new(2, s);
        for _ in 0..8 * s {
            let c = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(c, out);
        }
        let pkts = col.take();
        assert_eq!(pkts.len(), 1, "corrected, not dropped");
        assert!(pkts[0].verify_payload());
        let ctr = sw.counters();
        assert_eq!(ctr.ecc_corrected, 1);
        assert_eq!(ctr.corrupt_drops, 0);
        assert_eq!(ctr.departed, 1);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn repeated_upsets_trigger_spare_failover_then_degraded_mode() {
        let mut cfg = SwitchConfig::symmetric(2, 2);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        cfg.recovery = crate::recovery::RecoveryConfig::full(1, 2);
        cfg.recovery.degrade_window = 3;
        let mut sw = PipelinedSwitch::new(cfg);
        let s = 4;
        assert_eq!(sw.spares_remaining(), 1);
        // Strike stage 2 once per buffered packet; every read scrubs and
        // corrects, and the second correction crosses the threshold.
        for round in 0..4u64 {
            let p = Packet::synth(round, 0, 1, s, 0);
            for k in 0..s {
                sw.tick(&[Some(p.words[k]), None]);
            }
            for a in 0..2 {
                sw.inject_bank_fault(2, Addr(a), 1);
            }
            for _ in 0..8 * s {
                sw.tick(&[None, None]);
            }
        }
        let ctr = sw.counters();
        assert_eq!(ctr.bank_failovers, 1, "spare consumed at the threshold");
        assert_eq!(sw.spares_remaining(), 0);
        assert!(
            sw.is_degraded(),
            "second threshold crossing with no spare left degrades"
        );
        assert!(sw.recovery_windows().count() >= 1);
        // Every corrected packet still departed; conservation holds.
        assert_eq!(ctr.in_flight(), 0);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn admission_pauses_inside_a_failover_window() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        cfg.recovery = crate::recovery::RecoveryConfig::full(1, 1);
        cfg.recovery.degrade_window = 200;
        let mut sw = PipelinedSwitch::new(cfg);
        let s = 4;
        // Buffer a packet, upset it: its read crosses the threshold
        // immediately (threshold 1) and opens a 200-cycle window.
        let p = Packet::synth(1, 0, 1, s, 0);
        for k in 0..s {
            sw.tick(&[Some(p.words[k]), None]);
        }
        for a in 0..8 {
            sw.inject_bank_fault(2, Addr(a), 1);
        }
        for _ in 0..8 * s {
            sw.tick(&[None, None]);
        }
        assert_eq!(sw.counters().bank_failovers, 1);
        assert!(sw.recovery_windows().active(sw.now()));
        // A packet offered during the settle window is shed at the door.
        let q = Packet::synth(2, 0, 1, s, 0);
        for k in 0..s {
            sw.tick(&[Some(q.words[k]), None]);
        }
        for _ in 0..8 * s {
            sw.tick(&[None, None]);
        }
        let ctr = sw.counters();
        assert_eq!(ctr.recovery_shed, 1);
        assert_eq!(ctr.dropped_buffer_full, 1, "shed counts as buffer-full");
        assert_eq!(ctr.in_flight(), 0, "conservation through the shed");
        assert!(sw.is_quiescent());
    }

    #[test]
    fn stuck_write_detected_by_scrub() {
        let mut cfg = SwitchConfig::symmetric(2, 8);
        cfg.cut_through = false;
        cfg.fused_cut_through = false;
        let mut sw = PipelinedSwitch::new(cfg);
        let s = 4;
        sw.force_stuck_write(2, 1_000);
        let p = Packet::synth(7, 0, 1, s, 3);
        let (pkts, sw) = feed_and_drain(sw, &p.words);
        assert!(pkts.is_empty(), "stale word condemned the packet");
        let ctr = sw.counters();
        assert_eq!(ctr.corrupt_drops, 1);
        assert!(ctr.writes_suppressed >= 1);
        assert!(sw.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "link protocol violation")]
    fn idle_mid_packet_panics() {
        let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(2, 8));
        let p = Packet::synth(7, 0, 1, 4, 0);
        sw.tick(&[Some(p.words[0]), None]);
        sw.tick(&[None, None]);
    }

    #[test]
    #[should_panic(expected = "nonexistent output")]
    fn bad_destination_panics() {
        let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(2, 8));
        let header = Packet::encode_header(5, 1); // output 5 of a 2×2
        sw.tick(&[Some(header), None]);
    }
}
