//! Switch configuration and validation.

use crate::arbiter::ArbiterPolicy;
use crate::policy::PolicyKind;
use crate::recovery::RecoveryConfig;

/// Datapath-integrity machinery of the switch (the detect-and-survive
/// hardening exercised by the fault-injection campaigns).
///
/// Real switch silicon ships with per-word parity/ECC on its buffer
/// memory and CRCs on its links; the Telegraphos context (§4) makes bank
/// upsets, link bit-errors and credit loss concrete failure modes. This
/// block models the *detection* side of that machinery at word level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Compute a per-slot checksum over the packet's words at ingress and
    /// re-verify it when a read wave is about to initiate on a fully
    /// written slot (models a parity/ECC scrub). Mismatching packets are
    /// dropped and counted in `corrupt_drops` — detect-and-drop. The
    /// check is payload-agnostic, so it is safe for rewritten (VC)
    /// headers. Only store-and-forward reads can be checked: a
    /// cut-through read starts before the slot is fully written.
    pub checksum: bool,
    /// Verify every delivered word against the synthetic payload rule at
    /// egress (models the link CRC a real switch appends). Failures are
    /// counted in `corrupt_delivered` — the words are already on the
    /// wire. Off by default: it assumes `Packet::synth` payloads, which
    /// VC-translated traffic does not carry.
    pub payload_check: bool,
    /// Survive malformed input instead of panicking: a header addressing
    /// nonexistent outputs or a link idling mid-packet becomes a counted
    /// `corrupt_drops` event. Off by default — in testbench mode such
    /// inputs are model bugs and must fail loudly.
    pub harden: bool,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            checksum: true,
            payload_check: false,
            harden: false,
        }
    }
}

/// Configuration of a pipelined-memory shared-buffer switch.
///
/// Defaults follow the paper: read-priority arbitration, cut-through
/// enabled, packet size equal to the quantum (`n_in + n_out` words).
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of incoming links.
    pub n_in: usize,
    /// Number of outgoing links.
    pub n_out: usize,
    /// Packet slots per memory bank (buffer capacity in packets).
    pub slots: usize,
    /// Link word width in bits (1..=64; Telegraphos III uses 16).
    pub word_bits: u32,
    /// Enable automatic cut-through (§3.3). When off, a read wave may only
    /// initiate after the packet's write wave has completed
    /// (store-and-forward), costing `stages` extra cycles of latency.
    pub cut_through: bool,
    /// Allow a read wave to fuse with the write wave of the same packet in
    /// the same cycle (output register samples the write bus). Only
    /// meaningful when `cut_through` is on.
    pub fused_cut_through: bool,
    /// Wave arbitration policy (paper: read priority).
    pub arbiter: ArbiterPolicy,
    /// Datapath-integrity machinery (checksum scrub, egress payload
    /// check, hardened framing).
    pub integrity: IntegrityConfig,
    /// Fault-recovery machinery (ECC correction, spare-bank failover,
    /// degraded-mode admission). Disabled by default — and zero-cost on
    /// the datapath when disabled, which the perf gate enforces.
    pub recovery: RecoveryConfig,
    /// Buffer-sharing policy governing slot admission/preemption
    /// (DESIGN.md §12). The static pool is the default and is held
    /// bit-exact with (and as fast as) the pre-policy admission code.
    pub policy: PolicyKind,
}

impl SwitchConfig {
    /// A symmetric `n × n` switch with `slots` packet slots, paper-default
    /// policies.
    pub fn symmetric(n: usize, slots: usize) -> Self {
        SwitchConfig {
            n_in: n,
            n_out: n,
            slots,
            word_bits: 16,
            cut_through: true,
            fused_cut_through: true,
            arbiter: ArbiterPolicy::ReadPriority,
            integrity: IntegrityConfig::default(),
            recovery: RecoveryConfig::default(),
            policy: PolicyKind::Static,
        }
    }

    /// The same configuration with the given recovery policy armed.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// The same configuration with the given buffer-sharing policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The Telegraphos III configuration (§4.4): 8×8, 16 stages, 256
    /// packet slots of 256 bits (16 words × 16 bits).
    pub fn telegraphos_iii() -> Self {
        SwitchConfig::symmetric(8, 256)
    }

    /// The Telegraphos I/II configuration (§4.1–4.2): 4×4, 8 stages.
    /// Telegraphos I buffers 8-byte packets in 8 SRAM chips (8-bit words);
    /// Telegraphos II 16-byte packets in 8 compiled SRAMs (16-bit words,
    /// 256 slots).
    pub fn telegraphos_i() -> Self {
        let mut c = SwitchConfig::symmetric(4, 256);
        c.word_bits = 8;
        c
    }

    /// Number of pipeline stages = packet size in words (the quantum).
    pub fn stages(&self) -> usize {
        self.n_in + self.n_out
    }

    /// Validate; panics with a descriptive message on nonsense.
    pub fn validate(&self) {
        assert!(self.n_in >= 1, "need at least one input");
        assert!(self.n_out >= 1, "need at least one output");
        assert!(self.n_out < 255, "dst encoding uses 8 bits (255 reserved)");
        assert!(self.slots >= 1, "need at least one buffer slot");
        assert!(
            (1..=64).contains(&self.word_bits),
            "word width must be 1..=64 bits"
        );
        if self.fused_cut_through {
            assert!(self.cut_through, "fused cut-through requires cut-through");
        }
        if self.recovery.failover_threshold > 0 {
            assert!(
                self.recovery.ecc,
                "failover requires ECC: corrections drive the threshold"
            );
        }
    }

    /// Aggregate buffer capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        (self.stages() * self.slots) as u64 * self.word_bits as u64
    }

    /// Aggregate buffer throughput in bits per cycle (all banks busy):
    /// `stages × word_bits`, the "total width of the shared buffer" of
    /// §3.5.
    pub fn throughput_bits_per_cycle(&self) -> u64 {
        self.stages() as u64 * self.word_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_defaults() {
        let c = SwitchConfig::symmetric(4, 64);
        c.validate();
        assert_eq!(c.stages(), 8);
        assert!(c.cut_through && c.fused_cut_through);
        assert_eq!(c.arbiter, ArbiterPolicy::ReadPriority);
        assert!(c.integrity.checksum, "checksum scrub on by default");
        assert!(!c.integrity.payload_check, "egress check is opt-in");
        assert!(!c.integrity.harden, "testbench mode panics on bad input");
    }

    #[test]
    fn telegraphos_iii_capacity_is_64_kbit() {
        let c = SwitchConfig::telegraphos_iii();
        c.validate();
        assert_eq!(c.stages(), 16);
        assert_eq!(c.capacity_bits(), 65_536, "the paper's 64 Kbit buffer");
        assert_eq!(c.throughput_bits_per_cycle(), 256);
    }

    #[test]
    #[should_panic(expected = "fused cut-through requires cut-through")]
    fn fused_without_cut_through_rejected() {
        let mut c = SwitchConfig::symmetric(2, 4);
        c.cut_through = false;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let mut c = SwitchConfig::symmetric(2, 4);
        c.n_in = 0;
        c.validate();
    }
}
