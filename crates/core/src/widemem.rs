//! The wide-memory shared-buffer switch of figure 3 (\[KaSC91\]) at word
//! level — the organization §3.2 compares the pipelined memory against.
//!
//! Structure (per the figure):
//!
//! * one **wide memory**: each memory word holds an entire packet
//!   (`S = 2n` link words); one whole-packet operation per cycle;
//! * **double input buffering**: an *assembly* row fills from the wire;
//!   on completion the packet moves to a *staging* row to wait for a
//!   memory write slot — needed "because it is not possible to guarantee
//!   that the wide memory will be available for storing the packet into
//!   it at precisely the desired time". A single-buffered variant
//!   (`double_buffering = false`) demonstrates the drops that occur
//!   without it;
//! * a separate **cut-through bypass crossbar** (`cut_through_crossbar`),
//!   because "a packet cannot be stored into the wide memory before all
//!   of it has arrived, and … cut-through must start before that time":
//!   extra tri-state drivers and buses connect the assembly rows directly
//!   to idle output links;
//! * per-output **double buffering** on the way out (\[KaSC91\] used it
//!   "as a feature": the next packet is fetched while the previous one
//!   transmits).
//!
//! The point of this model is the contrast the paper draws: everything
//! the pipelined organization gets for free — no double buffering, no
//! bypass crossbar, cut-through with no extra control — exists here as
//! explicit, costly machinery. The tests pin the behavioral consequences;
//! `vlsimodel` prices the silicon (§5.2).

use crate::events::SwitchCounters;
use crate::policy::{AdmitDecision, PolicyEngine, PolicyKind, PolicyView, SharingPolicy};
use crate::recovery::{RecoveryConfig, RecoveryReport, RecoveryWindows};
use crate::rtl::integrity_checksum;
use membank::wide::WideMemory;
use simkernel::cell::Packet;
use simkernel::ids::{Addr, Cycle};
use std::collections::VecDeque;
use telemetry::{
    DropReason, GaugeKind, ProbeEvent, ProbeHandle, RecoveryTag, SharedRecorder, TelemetryConfig,
};

/// Configuration of the wide-memory switch.
#[derive(Debug, Clone)]
pub struct WideSwitchConfig {
    /// Inputs (= outputs).
    pub n: usize,
    /// Packet slots in the wide memory.
    pub slots: usize,
    /// Second input buffer row (fig. 3 requires it; `false` shows why).
    pub double_buffering: bool,
    /// The extra bypass crossbar for cut-through.
    pub cut_through_crossbar: bool,
    /// Fault-recovery machinery. In the wide organization the "bank" the
    /// ECC protects is a memory *row* (one packet per row), so failover
    /// retires rows: a row whose cumulative corrections cross the
    /// threshold is masked out of the free list and a spare row promoted
    /// in its place. With the spare pool exhausted, capacity degrades.
    pub recovery: RecoveryConfig,
    /// Buffer-sharing policy governing memory-store admission and
    /// preemption (DESIGN.md §12). The wide organization decides at
    /// store time — bypassed (cut-through) packets never touch the
    /// memory and are never policed.
    pub policy: PolicyKind,
}

impl WideSwitchConfig {
    /// Paper-faithful configuration (both features on).
    pub fn fig3(n: usize, slots: usize) -> Self {
        WideSwitchConfig {
            n,
            slots,
            double_buffering: true,
            cut_through_crossbar: true,
            recovery: RecoveryConfig::default(),
            policy: PolicyKind::Static,
        }
    }

    /// The same configuration with the given recovery policy armed.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// The same configuration with the given buffer-sharing policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Packet size in words (kept equal to the pipelined quantum `2n` so
    /// the two organizations are directly comparable).
    pub fn packet_words(&self) -> usize {
        2 * self.n
    }
}

#[derive(Debug, Clone)]
struct Assembly {
    words: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Staged {
    words: Vec<u64>,
    dst: usize,
    id: u64,
    birth: Cycle,
    /// Earliest cycle the memory may store it (completion + 1).
    ready: Cycle,
    /// A bypass transmission already took this packet; storing it would
    /// duplicate it.
    bypassed: bool,
}

#[derive(Debug, Clone)]
struct OutState {
    /// Words being transmitted, next index.
    tx: Option<(Vec<u64>, usize, u64, Cycle)>,
    /// Fetched packet waiting its turn (output double buffering).
    next: Option<(Vec<u64>, u64, Cycle)>,
    /// Bypass (cut-through) feed: (input, started_at). While set, words
    /// are taken straight from that input's assembly row.
    bypass: Option<BypassTx>,
}

#[derive(Debug, Clone, Copy)]
struct BypassTx {
    input: usize,
    /// Word index to transmit next.
    k: usize,
    id: u64,
    birth: Cycle,
}

/// The wide-memory shared-buffer switch (fig. 3).
#[derive(Debug)]
pub struct WideMemorySwitchRtl {
    cfg: WideSwitchConfig,
    mem: WideMemory,
    free: Vec<Addr>,
    /// Per output: (slot, id, birth, checksum stamped at write time).
    queues: Vec<VecDeque<(Addr, u64, Cycle, u64)>>,
    assembly: Vec<Assembly>,
    asm_fill: Vec<usize>,
    asm_meta: Vec<Option<(usize, u64, Cycle, bool)>>, // dst, id, birth, dropped
    staging: Vec<Option<Staged>>,
    outs: Vec<OutState>,
    cycle: Cycle,
    counters: SwitchCounters,
    probe: Option<ProbeHandle>,
    /// Last occupancy gauge emitted (probe attached only).
    last_occ: u64,
    /// Reusable per-cycle output buffer (hot path: must not allocate).
    wire_out: Vec<Option<u64>>,
    /// Packets that had to be dropped because the staging row was still
    /// occupied when the next packet finished assembling (the failure
    /// mode double buffering exists to prevent).
    pub staging_overruns: u64,
    /// Spare memory rows held back for hot failover (recovery armed).
    spare_pool: Vec<Addr>,
    /// Cumulative ECC corrections charged to each memory row.
    row_corrections: Vec<u64>,
    /// Rows currently in circulation (free + occupied); drops below
    /// `cfg.slots` once retirements outrun the spare pool.
    capacity: usize,
    /// Declared recovery windows (failover settle periods) — in-window
    /// loss is excused by the conformance oracle, and the window lengths
    /// are the MTTR numerator of the chaos campaign.
    recovery_windows: RecoveryWindows,
    /// The buffer-sharing policy (store admission / preemption).
    policy: PolicyEngine,
    /// Cached `policy.is_static()` — the store path branches on this
    /// once per packet to keep the static pool at its pre-policy cost.
    policy_static: bool,
}

impl WideMemorySwitchRtl {
    /// Build the switch.
    pub fn new(cfg: WideSwitchConfig) -> Self {
        assert!(cfg.n >= 1 && cfg.slots >= 1);
        let s = cfg.packet_words();
        let spares = cfg.recovery.spare_banks;
        let depth = cfg.slots + spares;
        let mut mem = WideMemory::new(depth, s, 64);
        if cfg.recovery.ecc {
            mem.enable_ecc();
        }
        WideMemorySwitchRtl {
            mem,
            free: (0..cfg.slots).rev().map(Addr).collect(),
            queues: vec![VecDeque::new(); cfg.n],
            assembly: vec![Assembly { words: vec![0; s] }; cfg.n],
            asm_fill: vec![0; cfg.n],
            asm_meta: vec![None; cfg.n],
            staging: vec![None; cfg.n],
            outs: vec![
                OutState {
                    tx: None,
                    next: None,
                    bypass: None
                };
                cfg.n
            ],
            cycle: 0,
            counters: SwitchCounters::default(),
            probe: None,
            last_occ: 0,
            wire_out: vec![None; cfg.n],
            staging_overruns: 0,
            spare_pool: (cfg.slots..depth).rev().map(Addr).collect(),
            row_corrections: vec![0; depth],
            capacity: cfg.slots,
            recovery_windows: RecoveryWindows::default(),
            policy: cfg.policy.engine(cfg.n, cfg.packet_words()),
            policy_static: cfg.policy.is_static(),
            cfg,
        }
    }

    /// Build a switch with telemetry per `tel`: returns the switch and
    /// the attached recorder (if `tel` enables one).
    pub fn with_telemetry(
        cfg: WideSwitchConfig,
        tel: &TelemetryConfig,
    ) -> (Self, Option<SharedRecorder>) {
        let mut sw = Self::new(cfg);
        let rec = tel.recorder();
        if let Some(r) = &rec {
            sw.attach_probe(r.handle());
        }
        (sw, rec)
    }

    /// Attach a probe sink (headers, whole-packet memory ops, bypass
    /// cut-throughs, drops, departures, occupancy gauges).
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Aggregate counters.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Fault injection (testbench only): flip the bits of `mask` in link
    /// word `word_k` of memory slot `addr`. Returns `true` when the slot
    /// currently holds a live (queued, not yet fetched) packet — i.e. the
    /// upset can reach the fetch-time scrub.
    pub fn inject_memory_fault(&mut self, addr: Addr, word_k: usize, mask: u64) -> bool {
        self.mem.inject_fault(addr, word_k, mask);
        self.queues
            .iter()
            .any(|q| q.iter().any(|&(a, ..)| a == addr))
    }

    /// ECC-scrub every code word of row `addr`, charging corrections to
    /// the row. Returns `true` when the row's cumulative corrections
    /// crossed the failover threshold and it must be retired after the
    /// pending fetch.
    fn scrub_row(&mut self, addr: Addr, c: Cycle) -> bool {
        let (fixed, dead) = self.mem.scrub_packet(addr);
        if fixed > 0 {
            self.counters.ecc_corrected += u64::from(fixed);
            self.row_corrections[addr.index()] += u64::from(fixed);
            if let Some(p) = &self.probe {
                p.emit(
                    c,
                    ProbeEvent::Recovery {
                        tag: RecoveryTag::EccCorrected,
                        index: addr.index(),
                        info: u64::from(fixed),
                    },
                );
            }
        }
        if dead > 0 {
            self.counters.ecc_uncorrectable += u64::from(dead);
            if let Some(p) = &self.probe {
                p.emit(
                    c,
                    ProbeEvent::Recovery {
                        tag: RecoveryTag::EccUncorrectable,
                        index: addr.index(),
                        info: u64::from(dead),
                    },
                );
            }
        }
        self.cfg.recovery.failover_enabled()
            && self.row_corrections[addr.index()] >= self.cfg.recovery.failover_threshold
    }

    /// Mask row `addr` out of circulation and promote a spare in its
    /// place (hot failover). With the spare pool dry the buffer shrinks —
    /// degraded mode: same semantics, less capacity.
    fn retire_row(&mut self, addr: Addr, c: Cycle) {
        self.counters.bank_failovers += 1;
        let settle = if self.cfg.recovery.degrade_window > 0 {
            self.cfg.recovery.degrade_window
        } else {
            self.cfg.packet_words() as u64
        };
        self.recovery_windows.open(c, settle);
        if let Some(p) = &self.probe {
            p.emit(
                c,
                ProbeEvent::Recovery {
                    tag: RecoveryTag::BankFailover,
                    index: addr.index(),
                    info: self.spare_pool.len() as u64,
                },
            );
        }
        match self.spare_pool.pop() {
            Some(spare) => self.free.push(spare),
            None => {
                self.capacity -= 1;
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Recovery {
                            tag: RecoveryTag::DegradedEnter,
                            index: addr.index(),
                            info: self.capacity as u64,
                        },
                    );
                }
            }
        }
    }

    /// True once retirements have outrun the spare pool and buffer
    /// capacity dropped below the configured slot count.
    pub fn is_degraded(&self) -> bool {
        self.capacity < self.cfg.slots
    }

    /// Spare rows still available for hot failover.
    pub fn spares_remaining(&self) -> usize {
        self.spare_pool.len()
    }

    /// Declared recovery windows (failover settle spans).
    pub fn recovery_windows(&self) -> &RecoveryWindows {
        &self.recovery_windows
    }

    /// Snapshot of the recovery ledger.
    pub fn recovery_report(&self) -> RecoveryReport {
        RecoveryReport {
            corrections: self.counters.ecc_corrected,
            uncorrectable: self.counters.ecc_uncorrectable,
            failovers: self.counters.bank_failovers,
            shed: self.counters.recovery_shed,
            retries: 0,
            retry_give_ups: 0,
            windows: self.recovery_windows.clone(),
        }
    }

    /// True when nothing is buffered or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.free.len() == self.capacity
            && self.staging.iter().all(Option::is_none)
            && self.asm_fill.iter().all(|&k| k == 0)
            && self
                .outs
                .iter()
                .all(|o| o.tx.is_none() && o.next.is_none() && o.bypass.is_none())
    }

    /// One non-static store-admission decision. Every queued packet is
    /// fully written and not yet in transmission (the fetch frees its row
    /// immediately), so any queue entry is evictable; push-out takes the
    /// rearmost entry of the victim queue.
    fn policy_admit(&mut self, dst: usize) -> bool {
        let qlens: Vec<usize> = self.queues.iter().map(VecDeque::len).collect();
        let decision = self.policy.admit(&PolicyView {
            occupancy: self.capacity - self.free.len(),
            capacity: self.capacity,
            n_out: self.cfg.n,
            dst,
            qlens: &qlens,
        });
        match decision {
            AdmitDecision::Accept => true,
            AdmitDecision::Reject => false,
            AdmitDecision::Preempt { victim } => match self.queues[victim].pop_back() {
                Some((addr, vid, _, _)) => {
                    self.free.push(addr);
                    self.counters.policy_preempts += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            self.cycle,
                            ProbeEvent::Drop {
                                id: vid,
                                reason: DropReason::Preempted,
                            },
                        );
                    }
                    true
                }
                None => false,
            },
        }
    }

    /// Store staged packet `i` into the wide memory (one whole-packet
    /// write, this cycle's single memory operation), or count the drop
    /// if no slot is free.
    fn write_staged(&mut self, i: usize) {
        let st = self.staging[i].take().expect("write_staged on empty row");
        if !self.policy_static && !self.policy_admit(st.dst) {
            self.counters.policy_drops += 1;
            if let Some(p) = &self.probe {
                p.emit(
                    self.cycle,
                    ProbeEvent::Drop {
                        id: st.id,
                        reason: DropReason::AdmissionPolicy,
                    },
                );
            }
            return;
        }
        match self.free.pop() {
            Some(addr) => {
                self.mem
                    .write_packet(addr, &st.words)
                    .expect("one op per cycle");
                let sum = integrity_checksum(st.words.iter().copied());
                self.queues[st.dst].push_back((addr, st.id, st.birth, sum));
                if let Some(p) = &self.probe {
                    p.emit(
                        self.cycle,
                        ProbeEvent::WriteWave {
                            input: i,
                            addr: addr.index(),
                        },
                    );
                }
            }
            None => {
                self.counters.dropped_buffer_full += 1;
                if let Some(p) = &self.probe {
                    p.emit(
                        self.cycle,
                        ProbeEvent::Drop {
                            id: st.id,
                            reason: DropReason::BufferFull,
                        },
                    );
                }
            }
        }
    }

    /// Advance one cycle: words in, words out. The returned slice
    /// borrows internal scratch and is valid until the next tick.
    #[allow(clippy::needless_range_loop)] // per-port hardware scan over several arrays
    pub fn tick(&mut self, wire_in: &[Option<u64>]) -> &[Option<u64>] {
        assert_eq!(wire_in.len(), self.cfg.n);
        let c = self.cycle;
        let s = self.cfg.packet_words();
        let n = self.cfg.n;
        self.mem.begin_cycle(c);

        // ------------------------------------------------------------------
        // 1. Output links transmit (from tx rows or over the bypass).
        // ------------------------------------------------------------------
        let mut wire_out = std::mem::take(&mut self.wire_out);
        wire_out.clear();
        wire_out.resize(n, None);
        for j in 0..n {
            // Bypass transmission reads the source assembly row directly.
            // The word sent in cycle c arrived two cycles earlier (input
            // latch → crossbar → output register), so transmission starts
            // at birth + 2 — the same cut-through latency the pipelined
            // organization achieves without any of this hardware.
            if let Some(bp) = self.outs[j].bypass {
                if c >= bp.birth + 2 {
                    let word = self.assembly[bp.input].words[bp.k];
                    wire_out[j] = Some(word);
                    let k = bp.k + 1;
                    if k == s {
                        self.outs[j].bypass = None;
                        self.counters.departed += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Departed {
                                    output: j,
                                    id: bp.id,
                                    birth: bp.birth,
                                    latency: c - bp.birth,
                                },
                            );
                        }
                    } else {
                        self.outs[j].bypass = Some(BypassTx { k, ..bp });
                    }
                }
                continue;
            }
            if self.outs[j].tx.is_none() {
                if let Some((words, id, birth)) = self.outs[j].next.take() {
                    self.outs[j].tx = Some((words, 0, id, birth));
                }
            }
            if let Some((words, k, id, birth)) = self.outs[j].tx.as_mut() {
                wire_out[j] = Some(words[*k]);
                *k += 1;
                let (done, id, birth) = (*k == s, *id, *birth);
                if done {
                    self.outs[j].tx = None;
                    self.counters.departed += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Departed {
                                output: j,
                                id,
                                birth,
                                latency: c - birth,
                            },
                        );
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // 2. Memory: one whole-packet operation per cycle. Reads normally
        //    have priority (the output links must not starve), but a
        //    staged write whose deadline is imminent preempts them. The
        //    §3.2 schedulability argument — every write meets its one-
        //    packet-time deadline because at most `n` reads and `n − 1`
        //    earlier-deadline writes precede it in its window — only
        //    holds if reads *yield* once a write's slack runs out. With
        //    absolute read priority, a transient fetch burst (an idle
        //    output fetching, then immediately prefetching its double
        //    buffer) starves a staged write past its deadline and
        //    overflows the staging row: a packet loss credits cannot
        //    prevent. Found by the differential conformance fuzzer.
        // ------------------------------------------------------------------
        let deadline = |st: &Staged| st.ready + s as Cycle - 1;
        let mut mem_busy = false;
        let urgent = (0..n)
            .filter(|&i| {
                self.staging[i].as_ref().is_some_and(|st| {
                    st.ready <= c && !st.bypassed && deadline(st) < c + n as Cycle
                })
            })
            .min_by_key(|&i| deadline(self.staging[i].as_ref().expect("checked")));
        if let Some(i) = urgent {
            self.write_staged(i);
            mem_busy = true;
        }
        for j in 0..n {
            if mem_busy {
                break;
            }
            if self.outs[j].next.is_some() {
                continue;
            }
            if let Some(&(addr, id, birth, sum)) = self.queues[j].front() {
                self.queues[j].pop_front();
                if !self.policy_static {
                    // BShare queueing-delay signal: birth-to-fetch.
                    self.policy.on_read(j, c - birth);
                }
                // ECC pass over the row before the fetch samples it: a
                // single-bit upset per code word is corrected in place, so
                // the checksum scrub below sees clean data.
                let retire = if self.cfg.recovery.ecc {
                    self.scrub_row(addr, c)
                } else {
                    false
                };
                let words = self.mem.read_packet(addr).expect("one op per cycle");
                if retire {
                    self.retire_row(addr, c);
                } else {
                    self.free.push(addr);
                }
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::ReadWave {
                            output: j,
                            addr: addr.index(),
                            fused: false,
                        },
                    );
                }
                // Integrity scrub at fetch: the wide organization checks a
                // whole packet in one access (its ECC word is as wide as
                // the memory). Mismatch → detect-and-drop.
                if integrity_checksum(words.iter().copied()) != sum {
                    self.counters.corrupt_drops += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Drop {
                                id,
                                reason: DropReason::Checksum,
                            },
                        );
                    }
                } else {
                    self.outs[j].next = Some((words, id, birth));
                }
                mem_busy = true;
                break;
            }
        }
        if !mem_busy {
            // Oldest staged packet wins the write slot.
            let cand = (0..n)
                .filter(|&i| {
                    self.staging[i]
                        .as_ref()
                        .is_some_and(|st| st.ready <= c && !st.bypassed)
                })
                .min_by_key(|&i| self.staging[i].as_ref().expect("checked").ready);
            if let Some(i) = cand {
                self.write_staged(i);
            } else if let Some(i) = (0..n).find(|&i| {
                self.staging[i]
                    .as_ref()
                    .is_some_and(|st| st.ready <= c && st.bypassed)
            }) {
                // Bypassed packets are already on the wire; discard.
                self.staging[i] = None;
            }
        }

        // ------------------------------------------------------------------
        // 3. Input arrivals: assembly, header decode, bypass initiation.
        // ------------------------------------------------------------------
        for (i, w) in wire_in.iter().enumerate() {
            let Some(word) = w else {
                assert!(
                    self.asm_fill[i] == 0,
                    "link protocol violation: idle inside a packet on input {i}"
                );
                continue;
            };
            let k = self.asm_fill[i];
            if k == 0 {
                let (dst, id) = Packet::decode_header(*word);
                assert!(dst < n, "bad destination {dst}");
                self.counters.arrived += 1;
                self.asm_meta[i] = Some((dst, id, c, false));
                if let Some(p) = &self.probe {
                    p.emit(c, ProbeEvent::HeaderArrived { input: i, id, dst });
                }
                // Cut-through over the bypass crossbar: output idle (no
                // tx, no next, no bypass) and nothing pending for it —
                // neither queued in the memory nor sitting in a staging
                // row awaiting its write slot. Staged packets count: one
                // stuck behind a busy memory would otherwise be overtaken
                // by a later packet of the same flow (FIFO violation).
                if self.cfg.cut_through_crossbar {
                    let out = &self.outs[dst];
                    let staged_pending = self
                        .staging
                        .iter()
                        .flatten()
                        .any(|st| !st.bypassed && st.dst == dst);
                    if out.tx.is_none()
                        && out.next.is_none()
                        && out.bypass.is_none()
                        && self.queues[dst].is_empty()
                        && !staged_pending
                    {
                        self.outs[dst].bypass = Some(BypassTx {
                            input: i,
                            k: 0,
                            id,
                            birth: c,
                        });
                        self.counters.fused_reads += 1; // bypass cut-throughs
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::CutThrough {
                                    output: dst,
                                    id,
                                    fused: false,
                                },
                            );
                        }
                        if let Some(meta) = self.asm_meta[i].as_mut() {
                            meta.3 = true; // mark as bypassed
                        }
                    }
                }
            }
            self.assembly[i].words[k] = *word;
            self.asm_fill[i] = k + 1;
            if k + 1 == s {
                self.asm_fill[i] = 0;
                let (dst, id, birth, bypassed) = self.asm_meta[i].take().expect("header seen");
                let staged = Staged {
                    words: self.assembly[i].words.clone(),
                    dst,
                    id,
                    birth,
                    ready: c + 1,
                    bypassed,
                };
                if bypassed {
                    // The bypass is still reading this row; it finishes
                    // before the row refills (transmission lags arrival
                    // by 2 cycles), so nothing to stage.
                    self.counters.fused_reads += 0;
                } else if self.staging[i].is_none() {
                    self.staging[i] = Some(staged);
                } else {
                    // Staging row occupied — overrun. With double
                    // buffering this takes memory starvation for > S
                    // cycles; without, it is the expected failure mode.
                    self.staging_overruns += 1;
                    self.counters.latch_overruns += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Drop {
                                id,
                                reason: DropReason::LatchOverrun,
                            },
                        );
                    }
                }
            }
        }
        // Without double buffering, a staged packet must win the memory
        // in the very next cycle or be lost when the assembly row starts
        // refilling. Model: staging acts as the single row; if a new
        // packet starts arriving while staging is full, the staged packet
        // is overwritten (dropped).
        if !self.cfg.double_buffering {
            for i in 0..n {
                if self.asm_fill[i] == 1 {
                    if let Some(st) = self.staging[i].take() {
                        self.staging_overruns += 1;
                        self.counters.latch_overruns += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: st.id,
                                    reason: DropReason::LatchOverrun,
                                },
                            );
                        }
                    }
                }
            }
        }

        if let Some(p) = &self.probe {
            let occ = (self.cfg.slots - self.free.len()) as u64;
            if occ != self.last_occ {
                self.last_occ = occ;
                p.emit(
                    c,
                    ProbeEvent::Gauge {
                        gauge: GaugeKind::Occupancy,
                        index: 0,
                        value: occ,
                    },
                );
            }
        }

        self.cycle = c + 1;
        self.wire_out = wire_out;
        &self.wire_out
    }
}

impl simkernel::Horizon for WideMemorySwitchRtl {
    fn now(&self) -> Cycle {
        self.cycle
    }

    /// Like the pipelined RTL model, the wide organization's idle-cycle
    /// activity (assembly rows, staging deadlines, bypass feeds, output
    /// double buffers) is too intertwined to bound finely; report the
    /// coarsest correct horizon — quiescent-forever or event-now — which
    /// still lets drivers skip the dead gaps between bursts.
    fn next_event(&self) -> Option<Cycle> {
        if self.is_quiescent() {
            None
        } else {
            Some(self.cycle)
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.cycle, "jump_to moves time forward only");
        debug_assert!(
            self.is_quiescent(),
            "the wide model only skips quiescent spans"
        );
        for w in &mut self.wire_out {
            *w = None;
        }
        self.cycle = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::OutputCollector;

    fn run_packets(
        cfg: WideSwitchConfig,
        packets: &[(usize, Packet)],
        extra: usize,
    ) -> (Vec<crate::rtl::DeliveredPacket>, WideMemorySwitchRtl) {
        let s = cfg.packet_words();
        let n = cfg.n;
        let mut sw = WideMemorySwitchRtl::new(cfg);
        let mut col = OutputCollector::new(n, s);
        let horizon = packets
            .iter()
            .map(|(start, p)| start + p.size_words)
            .max()
            .unwrap_or(0)
            + extra;
        for t in 0..horizon {
            let mut wire = vec![None; n];
            for (start, p) in packets {
                if t >= *start && t < start + s {
                    let i = p.src.index();
                    assert!(wire[i].is_none(), "two packets on input {i}");
                    wire[i] = Some(p.words[t - start]);
                }
            }
            let now = sw.now();
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        (col.take(), sw)
    }

    #[test]
    fn bypass_cut_through_matches_pipelined_timing() {
        // With the crossbar, the first word leaves 2 cycles after the
        // header — the same latency the pipelined organization achieves
        // without any extra hardware.
        let cfg = WideSwitchConfig::fig3(2, 8);
        let p = Packet::synth(1, 0, 1, 4, 0);
        let (pkts, sw) = run_packets(cfg, &[(0, p)], 30);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].first_cycle, 2, "bypass cut-through at a+2");
        assert!(pkts[0].verify_payload());
        assert_eq!(sw.counters().departed, 1);
    }

    #[test]
    fn without_crossbar_latency_grows_by_packet_time() {
        let mut cfg = WideSwitchConfig::fig3(2, 8);
        cfg.cut_through_crossbar = false;
        let p = Packet::synth(1, 0, 1, 4, 0);
        let (pkts, _) = run_packets(cfg, &[(0, p)], 40);
        assert_eq!(pkts.len(), 1);
        // Assemble through a+3, stage at a+4, write ≥ a+4, read ≥ a+5,
        // transmit from a+6 at the earliest.
        assert!(
            pkts[0].first_cycle >= 6,
            "store-and-forward first word at {}",
            pkts[0].first_cycle
        );
        assert!(pkts[0].verify_payload());
    }

    #[test]
    fn contending_packets_serialized_through_memory() {
        let cfg = WideSwitchConfig::fig3(2, 8);
        let a = Packet::synth(1, 0, 0, 4, 0);
        let b = Packet::synth(2, 1, 0, 4, 0);
        let (pkts, sw) = run_packets(cfg, &[(0, a), (0, b)], 60);
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| p.verify_payload()));
        assert_eq!(sw.counters().latch_overruns, 0);
        // Same output: transmissions must not overlap.
        assert!(pkts[1].first_cycle > pkts[0].last_cycle);
    }

    #[test]
    fn double_buffering_survives_memory_contention() {
        // Saturate reads so writes are delayed: back-to-back packets on
        // both inputs to both outputs. With double buffering nothing is
        // lost; with a single row the same workload drops.
        let run = |double: bool| {
            let mut cfg = WideSwitchConfig::fig3(2, 16);
            cfg.double_buffering = double;
            cfg.cut_through_crossbar = false;
            let s = cfg.packet_words();
            let mut sw = WideMemorySwitchRtl::new(cfg);
            let mut col = OutputCollector::new(2, s);
            let mut id = 0u64;
            for burst in 0..12u64 {
                for k in 0..s {
                    let t = burst * s as u64 + k as u64;
                    let w0 = Packet::synth(2 * burst, 0, (burst % 2) as usize, s, burst * s as u64)
                        .words[k];
                    let w1 = Packet::synth(
                        2 * burst + 1,
                        1,
                        ((burst + 1) % 2) as usize,
                        s,
                        burst * s as u64,
                    )
                    .words[k];
                    let now = sw.now();
                    let out = sw.tick(&[Some(w0), Some(w1)]);
                    col.observe(now, out);
                    let _ = t;
                }
                id += 2;
            }
            simkernel::run_until_quiescent(500, "wide-switch contention drain", |_| {
                if sw.is_quiescent() {
                    return true;
                }
                let now = sw.now();
                let out = sw.tick(&[None, None]);
                col.observe(now, out);
                false
            })
            .expect("drain hung");
            let _ = id;
            (col.take().len(), sw.staging_overruns)
        };
        let (delivered_double, overruns_double) = run(true);
        let (_, overruns_single) = run(false);
        assert_eq!(
            overruns_double, 0,
            "fig. 3's double buffering must absorb memory-slot jitter"
        );
        assert_eq!(delivered_double, 24);
        assert!(
            overruns_single > 0,
            "single buffering must drop under the same workload — the
             reason fig. 3 needs the second row"
        );
    }

    #[test]
    fn bypass_may_not_overtake_a_staged_packet_for_the_same_output() {
        // Found by the conformance fuzzer: packet p1 (input 0 → output 0)
        // sits fully assembled in the staging row while the memory is busy
        // with a fetch; its follower p2 on the same input then sees output
        // 0 idle with an empty queue and takes the bypass crossbar —
        // departing before p1, a per-flow FIFO violation. The bypass
        // condition must treat staged packets as pending for their output.
        //
        // Schedule (n = 3, S = 6) engineering the window:
        //   input 1: q  → dst 0, words at cycles 1..=6  (bypasses out 0)
        //   input 2: w1 → dst 1, words at cycles 0..=5  (bypasses out 1)
        //   input 2: r  → dst 1, words at cycles 6..=11 (stored; its fetch
        //            at cycle 13 is what keeps p1 stuck in staging)
        //   input 0: p1 → dst 0, words at cycles 7..=12 (stored)
        //   input 0: p2 → dst 0, words at cycles 13..=18
        let cfg = WideSwitchConfig::fig3(3, 8);
        let s = cfg.packet_words();
        let schedule = [
            (1usize, Packet::synth(10, 1, 0, s, 1)),
            (0usize, Packet::synth(20, 2, 1, s, 0)),
            (6usize, Packet::synth(21, 2, 1, s, 6)),
            (7usize, Packet::synth(30, 0, 0, s, 7)),
            (13usize, Packet::synth(31, 0, 0, s, 13)),
        ];
        let pkts = {
            let mut sw = WideMemorySwitchRtl::new(cfg);
            let mut col = OutputCollector::new(3, s);
            for t in 0..80usize {
                let mut wire = vec![None; 3];
                for (start, p) in &schedule {
                    if t >= *start && t < start + s {
                        let i = p.src.index();
                        assert!(wire[i].is_none());
                        wire[i] = Some(p.words[t - *start]);
                    }
                }
                let now = sw.now();
                let out = sw.tick(&wire);
                col.observe(now, out);
            }
            col.take()
        };
        assert_eq!(pkts.len(), 5, "all five packets deliver");
        let out0: Vec<u64> = pkts
            .iter()
            .filter(|p| p.output.index() == 0 && p.id >= 30)
            .map(|p| p.id)
            .collect();
        assert_eq!(
            out0,
            vec![30, 31],
            "same-flow packets must depart in arrival order"
        );
    }

    #[test]
    fn memory_upset_caught_by_fetch_scrub() {
        // Store-and-forward (no bypass) so the packet sits in the wide
        // memory when the upset strikes; the fetch-time scrub drops it.
        let mut cfg = WideSwitchConfig::fig3(2, 8);
        cfg.cut_through_crossbar = false;
        let s = cfg.packet_words();
        let mut sw = WideMemorySwitchRtl::new(cfg);
        let p = Packet::synth(5, 0, 1, s, 0);
        let mut col = OutputCollector::new(2, s);
        for k in 0..s {
            let now = sw.now();
            let out = sw.tick(&[Some(p.words[k]), None]);
            col.observe(now, out);
        }
        // Assembled at s-1, staged, written at s at the earliest; tick
        // once more so the write lands, then flip a bit in every slot:
        // exactly one holds the live packet.
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, out);
        let live: Vec<usize> = (0..8)
            .filter(|&a| sw.inject_memory_fault(Addr(a), 2, 1))
            .collect();
        assert_eq!(live.len(), 1, "one slot holds the packet");
        simkernel::run_until_quiescent(200, "scrub drain", |_| {
            if sw.is_quiescent() {
                return true;
            }
            let now = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(now, out);
            false
        })
        .expect("drain hung");
        assert!(col.take().is_empty(), "corrupted packet must not deliver");
        assert_eq!(sw.counters().corrupt_drops, 1);
    }

    /// Drive one packet through a store-and-forward switch, upsetting the
    /// live memory row once it is written; returns delivered packets and
    /// the drained switch.
    fn run_one_with_upset(
        cfg: WideSwitchConfig,
    ) -> (Vec<crate::rtl::DeliveredPacket>, WideMemorySwitchRtl) {
        let s = cfg.packet_words();
        let n = cfg.n;
        let mut sw = WideMemorySwitchRtl::new(cfg);
        let p = Packet::synth(5, 0, 1, s, 0);
        let mut col = OutputCollector::new(n, s);
        for k in 0..s {
            let now = sw.now();
            let out = sw.tick(&[Some(p.words[k]), None]);
            col.observe(now, out);
        }
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, out);
        let live = (0..sw.capacity)
            .filter(|&a| sw.inject_memory_fault(Addr(a), 2, 1))
            .count();
        assert_eq!(live, 1, "one row holds the packet");
        simkernel::run_until_quiescent(200, "ecc drain", |_| {
            if sw.is_quiescent() {
                return true;
            }
            let now = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(now, out);
            false
        })
        .expect("drain hung");
        (col.take(), sw)
    }

    #[test]
    fn ecc_corrects_row_upset_and_delivers() {
        // Same strike as `memory_upset_caught_by_fetch_scrub`, but with
        // ECC armed the fetch-time scrub repairs the bit and the packet
        // delivers intact instead of being condemned.
        let mut cfg = WideSwitchConfig::fig3(2, 8).with_recovery(RecoveryConfig::ecc_only());
        cfg.cut_through_crossbar = false;
        let (pkts, sw) = run_one_with_upset(cfg);
        assert_eq!(pkts.len(), 1, "corrected packet delivers");
        assert!(pkts[0].verify_payload());
        assert_eq!(sw.counters().corrupt_drops, 0);
        assert_eq!(sw.counters().ecc_corrected, 1);
        assert_eq!(sw.counters().ecc_uncorrectable, 0);
        assert!(!sw.is_degraded());
    }

    #[test]
    fn repeated_corrections_retire_the_row_spare_first() {
        // Threshold 1: the first correction retires the struck row. With
        // one spare the capacity survives; a second strike (on the
        // promoted spare) exhausts the pool and capacity degrades.
        let mut cfg = WideSwitchConfig::fig3(2, 8).with_recovery(RecoveryConfig::full(1, 1));
        cfg.cut_through_crossbar = false;
        let (pkts, sw) = run_one_with_upset(cfg);
        assert_eq!(pkts.len(), 1);
        assert_eq!(sw.counters().bank_failovers, 1);
        assert_eq!(sw.spares_remaining(), 0, "spare promoted into service");
        assert!(!sw.is_degraded(), "spare kept capacity whole");
        assert_eq!(sw.recovery_windows().count(), 1, "one settle window");
        assert!(sw.is_quiescent(), "retired row leaves the free list whole");

        let mut cfg = WideSwitchConfig::fig3(2, 8).with_recovery(RecoveryConfig::full(0, 1));
        cfg.cut_through_crossbar = false;
        let (_, sw) = run_one_with_upset(cfg);
        assert_eq!(sw.counters().bank_failovers, 1);
        assert!(sw.is_degraded(), "no spare: capacity shrinks");
        assert!(sw.is_quiescent());
    }

    #[test]
    fn conservation_under_random_traffic() {
        use simkernel::SplitMix64;
        let cfg = WideSwitchConfig::fig3(4, 32);
        let s = cfg.packet_words();
        let n = cfg.n;
        let mut sw = WideMemorySwitchRtl::new(cfg);
        let mut col = OutputCollector::new(n, s);
        let mut rng = SplitMix64::new(21);
        let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
        let mut next_id = 1u64;
        for _ in 0..20_000u64 {
            let now = sw.now();
            let mut wire = vec![None; n];
            for i in 0..n {
                if current[i].is_none() && rng.chance(0.5) {
                    let p = Packet::synth(next_id, i, rng.below_usize(n), s, now);
                    next_id += 1;
                    current[i] = Some((p, 0));
                }
                if let Some((p, k)) = current[i].as_mut() {
                    wire[i] = Some(p.words[*k]);
                    *k += 1;
                    if *k == s {
                        current[i] = None;
                    }
                }
            }
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        simkernel::run_until_quiescent(5_000, "wide-switch random-traffic drain", |_| {
            if sw.is_quiescent() {
                return true;
            }
            let now = sw.now();
            let mut wire = vec![None; n];
            for i in 0..n {
                if let Some((p, k)) = current[i].as_mut() {
                    wire[i] = Some(p.words[*k]);
                    *k += 1;
                    if *k == s {
                        current[i] = None;
                    }
                }
            }
            let out = sw.tick(&wire);
            col.observe(now, out);
            false
        })
        .expect("failed to drain");
        let pkts = col.take();
        let ctr = sw.counters();
        assert!(pkts.iter().all(|p| p.verify_payload()));
        assert_eq!(
            ctr.arrived,
            pkts.len() as u64 + ctr.dropped_buffer_full + ctr.latch_overruns,
            "conservation violated"
        );
        assert_eq!(ctr.latch_overruns, 0, "double buffering must suffice");
        assert!(pkts.len() > 5_000);
    }
}
