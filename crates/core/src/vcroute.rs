//! Virtual-circuit routing translation — the RT block of figure 6.
//!
//! The Telegraphos switches are virtual-circuit devices: "at the center
//! of the chip, the RT block is the translation routing memory, and the
//! HM is the untranslated packet header memory" (§4.2); buffer management
//! and VC-level flow control are in \[Kate94\]/\[KVES95\]. This module models
//! that ingress stage: packets arrive carrying a **VC label**, the
//! routing table maps it to an *(output link, outgoing VC)* pair, and the
//! header is rewritten before entering the shared buffer — so a chain of
//! switches forwards a circuit hop by hop, each hop swapping the label
//! (exactly ATM's VCI swapping).
//!
//! [`TranslatedSwitch`] wraps a [`PipelinedSwitch`]: word 0 of each
//! arriving packet is intercepted, looked up, and rewritten on the fly
//! (one cycle of combinational work, as the real RT does in parallel with
//! the input latch). Unmatched or invalid labels drop the packet at
//! ingress — counted, never silent.

use crate::config::SwitchConfig;
use crate::rtl::{DeliveredPacket, PipelinedSwitch};
use simkernel::cell::Packet;
use simkernel::ids::Cycle;

/// The VC-header wire format: low byte `0xFE`, then a 16-bit VC label,
/// then the packet id.
pub fn encode_header_vc(vc: u16, id: u64) -> u64 {
    (id << 24) | ((vc as u64) << 8) | 0xFE
}

/// Decode a VC header; `None` if the word is not a VC header.
pub fn decode_header_vc(word: u64) -> Option<(u16, u64)> {
    (word & 0xff == 0xFE).then_some((((word >> 8) & 0xffff) as u16, word >> 24))
}

/// Build a VC-labeled packet with the standard synthetic payload.
pub fn synth_vc_packet(id: u64, src: usize, vc: u16, size_words: usize, birth: Cycle) -> Packet {
    let mut p = Packet::synth(id, src, 0, size_words, birth);
    p.words[0] = encode_header_vc(vc, id);
    p
}

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcEntry {
    /// Output link of this hop.
    pub out: usize,
    /// Label to carry on the next hop.
    pub next_vc: u16,
}

/// The translation routing memory (RT).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    entries: Vec<Option<VcEntry>>,
    lookups: u64,
    misses: u64,
}

impl RoutingTable {
    /// An RT with capacity for `vcs` labels, all invalid.
    pub fn new(vcs: usize) -> Self {
        RoutingTable {
            entries: vec![None; vcs],
            lookups: 0,
            misses: 0,
        }
    }

    /// Install a circuit: label `vc` → (output, next label).
    pub fn install(&mut self, vc: u16, out: usize, next_vc: u16) {
        self.entries[vc as usize] = Some(VcEntry { out, next_vc });
    }

    /// Tear down a circuit.
    pub fn remove(&mut self, vc: u16) {
        self.entries[vc as usize] = None;
    }

    /// Look up a label (counts lookups and misses).
    pub fn lookup(&mut self, vc: u16) -> Option<VcEntry> {
        self.lookups += 1;
        let e = self.entries.get(vc as usize).copied().flatten();
        if e.is_none() {
            self.misses += 1;
        }
        e
    }

    /// `(lookups, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.misses)
    }
}

/// A VC-delivered packet with its outgoing label recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcDelivery {
    /// The underlying delivery.
    pub inner: DeliveredPacket,
    /// The outgoing VC label (for the next hop).
    pub vc: u16,
    /// The original packet id.
    pub id: u64,
}

impl VcDelivery {
    /// Verify the payload against the original id's synthesis rule.
    pub fn verify_payload(&self) -> bool {
        self.inner.words[1..]
            .iter()
            .enumerate()
            .all(|(i, &w)| w == Packet::payload_word(self.id, i + 1))
    }

    /// Re-encode this delivery as the wire words for the next hop.
    pub fn next_hop_words(&self) -> Vec<u64> {
        let mut words = self.inner.words.clone();
        words[0] = encode_header_vc(self.vc, self.id);
        words
    }
}

/// Recover `(vc, id)` from a delivered packet's composite header.
pub fn decode_delivery(d: &DeliveredPacket) -> (u16, u64) {
    // The ingress rewrite packed (next_vc, id) into the inner id field.
    let composite = d.id;
    ((composite >> 40) as u16, composite & ((1 << 40) - 1))
}

/// A pipelined switch with VC translation at ingress.
#[derive(Debug)]
pub struct TranslatedSwitch {
    inner: PipelinedSwitch,
    rt: RoutingTable,
    /// Per input: words remaining of a packet being discarded (dangling
    /// VC), or of a packet being passed through.
    in_state: Vec<InState>,
    /// Packets dropped at ingress for lack of a circuit.
    pub dangling_drops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InState {
    Idle,
    /// Passing a translated packet through; words remaining.
    Passing(usize),
    /// Discarding a packet with no circuit; words remaining.
    Discarding(usize),
}

impl TranslatedSwitch {
    /// Wrap a switch configuration with an RT of `vcs` labels.
    pub fn new(cfg: SwitchConfig, vcs: usize) -> Self {
        let n_in = cfg.n_in;
        TranslatedSwitch {
            inner: PipelinedSwitch::new(cfg),
            rt: RoutingTable::new(vcs),
            in_state: vec![InState::Idle; n_in],
            dangling_drops: 0,
        }
    }

    /// The routing table (install/remove circuits here).
    pub fn rt(&mut self) -> &mut RoutingTable {
        &mut self.rt
    }

    /// The wrapped switch (counters, trace, quiescence).
    pub fn inner(&self) -> &PipelinedSwitch {
        &self.inner
    }

    /// The wrapped switch, mutably (probe attachment, fault injection).
    pub fn inner_mut(&mut self) -> &mut PipelinedSwitch {
        &mut self.inner
    }

    /// Packet length in words.
    fn stages(&self) -> usize {
        self.inner.config().stages()
    }

    /// Advance one cycle: VC-labeled words in, VC-labeled words out
    /// (headers already rewritten for the next hop — use
    /// [`decode_delivery`] / an `OutputCollector` to reassemble). The
    /// slice borrows the inner switch's scratch, valid until next tick.
    pub fn tick(&mut self, wire_in: &[Option<u64>]) -> &[Option<u64>] {
        let s = self.stages();
        let mut translated: Vec<Option<u64>> = vec![None; wire_in.len()];
        for (i, w) in wire_in.iter().enumerate() {
            let Some(word) = w else {
                continue;
            };
            match self.in_state[i] {
                InState::Idle => {
                    let (vc, id) = decode_header_vc(*word)
                        .expect("TranslatedSwitch requires VC-labeled packets");
                    assert!(id < (1 << 40), "id field limited to 40 bits under VC");
                    match self.rt.lookup(vc) {
                        Some(e) => {
                            // Pack (next_vc, id) into the inner id so the
                            // label survives the buffer; route on `out`.
                            let composite = ((e.next_vc as u64) << 40) | id;
                            translated[i] = Some(Packet::encode_header(e.out, composite));
                            self.in_state[i] = InState::Passing(s - 1);
                        }
                        None => {
                            self.dangling_drops += 1;
                            self.in_state[i] = InState::Discarding(s - 1);
                        }
                    }
                }
                InState::Passing(left) => {
                    translated[i] = Some(*word);
                    self.in_state[i] = if left == 1 {
                        InState::Idle
                    } else {
                        InState::Passing(left - 1)
                    };
                }
                InState::Discarding(left) => {
                    self.in_state[i] = if left == 1 {
                        InState::Idle
                    } else {
                        InState::Discarding(left - 1)
                    };
                }
            }
        }
        self.inner.tick(&translated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::OutputCollector;

    fn deliver(
        sw: &mut TranslatedSwitch,
        packets: &[(u64, usize, u16)], // (id, input, vc), all header at cycle 0 impossible for same input
    ) -> Vec<VcDelivery> {
        let s = sw.stages();
        let n = sw.inner().config().n_in;
        let mut col = OutputCollector::new(n, s);
        for k in 0..s {
            let mut wire = vec![None; n];
            for &(id, input, vc) in packets {
                let p = synth_vc_packet(id, input, vc, s, 0);
                wire[input] = Some(p.words[k]);
            }
            let now = sw.inner().now();
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        let idle = vec![None; n];
        simkernel::run_until_quiescent((50 * s) as u64, "VC-switch drain", |_| {
            if sw.inner().is_quiescent() {
                return true;
            }
            let now = sw.inner().now();
            let out = sw.tick(&idle);
            col.observe(now, out);
            false
        })
        .expect("drain hung");
        col.take()
            .into_iter()
            .map(|d| {
                let (vc, id) = decode_delivery(&d);
                VcDelivery { inner: d, vc, id }
            })
            .collect()
    }

    #[test]
    fn label_swapped_and_routed() {
        let mut sw = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
        sw.rt().install(5, /*out*/ 1, /*next*/ 9);
        let out = deliver(&mut sw, &[(1, 0, 5)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].inner.output.index(), 1, "routed by the RT entry");
        assert_eq!(out[0].vc, 9, "label swapped for the next hop");
        assert_eq!(out[0].id, 1);
        assert!(out[0].verify_payload());
    }

    #[test]
    fn dangling_vc_dropped_and_counted() {
        let mut sw = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
        sw.rt().install(5, 1, 9);
        let out = deliver(&mut sw, &[(1, 0, 5), (2, 1, 7)]); // vc 7 not installed
        assert_eq!(out.len(), 1, "only the installed circuit delivers");
        assert_eq!(sw.dangling_drops, 1);
        let (lookups, misses) = sw.rt.stats();
        assert_eq!((lookups, misses), (2, 1));
    }

    #[test]
    fn two_switch_chain_forwards_a_circuit() {
        // Circuit: host → switch A (vc 3 → out 1, vc 11) → switch B
        // (vc 11 → out 0, vc 42) → host. The end-to-end label path is the
        // [KVES95] setting.
        let mut a = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
        let mut b = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
        a.rt().install(3, 1, 11);
        b.rt().install(11, 0, 42);
        let s = a.stages();

        // Stage 1: through switch A.
        let hop1 = deliver(&mut a, &[(7, 0, 3)]);
        assert_eq!(hop1.len(), 1);
        assert_eq!(hop1[0].vc, 11);

        // Stage 2: feed A's output words into B (port 1 → B's input 0).
        let words = hop1[0].next_hop_words();
        let mut col = OutputCollector::new(2, s);
        for w in words.iter().take(s) {
            let now = b.inner().now();
            let out = b.tick(&[Some(*w), None]);
            col.observe(now, out);
        }
        simkernel::run_until_quiescent((50 * s) as u64, "second-hop drain", |_| {
            if b.inner().is_quiescent() {
                return true;
            }
            let now = b.inner().now();
            let out = b.tick(&[None, None]);
            col.observe(now, out);
            false
        })
        .expect("drain hung");
        let hop2: Vec<VcDelivery> = col
            .take()
            .into_iter()
            .map(|d| {
                let (vc, id) = decode_delivery(&d);
                VcDelivery { inner: d, vc, id }
            })
            .collect();
        assert_eq!(hop2.len(), 1);
        assert_eq!(hop2[0].inner.output.index(), 0, "B routed by its RT");
        assert_eq!(hop2[0].vc, 42, "second label swap");
        assert_eq!(hop2[0].id, 7, "id preserved end to end");
        assert!(hop2[0].verify_payload(), "payload intact across two hops");
    }

    #[test]
    fn circuit_teardown_stops_traffic() {
        let mut sw = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
        sw.rt().install(5, 1, 9);
        let first = deliver(&mut sw, &[(1, 0, 5)]);
        assert_eq!(first.len(), 1);
        sw.rt().remove(5);
        let second = deliver(&mut sw, &[(2, 0, 5)]);
        assert!(second.is_empty());
        assert_eq!(sw.dangling_drops, 1);
    }

    #[test]
    fn vc_header_roundtrip() {
        for vc in [0u16, 1, 0xffff] {
            for id in [0u64, 9, (1 << 40) - 1] {
                let h = encode_header_vc(vc, id);
                assert_eq!(decode_header_vc(h), Some((vc, id)));
            }
        }
        assert_eq!(decode_header_vc(Packet::encode_header(1, 2)), None);
    }
}
