//! The control-signal pipeline of figure 5, as literal hardware.
//!
//! §3.3: "we only need to generate the control signals for the first
//! memory stage; the control signals for subsequent stages are delayed
//! versions of the former." The RTL switch computes per-stage controls
//! from its wave list (equivalent and convenient for tracing); this
//! module implements the *hardware* structure — one
//! [`simkernel::reg::DelayLine`] of control words, clocked once per cycle
//! — and a checker that asserts, cycle by cycle, that the two views are
//! identical. [`rtl::PipelinedSwitch`](crate::rtl::PipelinedSwitch) can
//! host the checker in tests; the `e5` experiment prints the pipeline's
//! contents directly.

use crate::rtl::StageCtrl;
use simkernel::reg::DelayLine;

/// The physical control pipeline: stage 0's control word enters at the
/// head; stage `k` executes what stage 0 executed `k` cycles ago.
#[derive(Debug, Clone)]
pub struct ControlPipeline {
    line: DelayLine<StageCtrl>,
    stages: usize,
}

impl ControlPipeline {
    /// A pipeline for `stages` memory stages.
    pub fn new(stages: usize) -> Self {
        assert!(stages >= 1);
        ControlPipeline {
            line: DelayLine::new(stages),
            stages,
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Drive stage 0's control for this cycle and clock the pipeline.
    /// Returns the control word each stage executes THIS cycle (stage 0 =
    /// the freshly driven word, stage k = the word from k cycles ago).
    pub fn clock(&mut self, stage0: StageCtrl) -> Vec<StageCtrl> {
        // The DelayLine commits on tick: stage k's committed value after
        // the tick is the word pushed k+1 cycles ago; so sample stages
        // 1.. from the pre-tick state and prepend the fresh word.
        let mut row = Vec::with_capacity(self.stages);
        row.push(stage0);
        for k in 0..self.stages - 1 {
            row.push(*self.line.stage(k));
        }
        self.line.push(stage0);
        self.line.tick();
        row
    }

    /// The control word stage `k` will execute next cycle (diagnostic).
    pub fn peek(&self, k: usize) -> &StageCtrl {
        self.line.stage(k)
    }
}

/// Shadows a [`PipelinedSwitch`](crate::rtl::PipelinedSwitch): feeds the
/// switch's stage-0 control into a real [`ControlPipeline`] and asserts
/// that the pipeline's outputs equal the switch's actual per-stage
/// controls — the fig. 5 property as a hardware invariant checker.
#[derive(Debug)]
pub struct ControlChecker {
    pipe: ControlPipeline,
    cycles_checked: u64,
}

impl ControlChecker {
    /// A checker for a switch with `stages` stages.
    pub fn new(stages: usize) -> Self {
        ControlChecker {
            pipe: ControlPipeline::new(stages),
            cycles_checked: 0,
        }
    }

    /// Call once per cycle, after the switch's `tick`, with
    /// [`stage_controls`](crate::rtl::PipelinedSwitch::stage_controls).
    /// Panics if the delayed-copy property is violated.
    pub fn check(&mut self, actual: &[StageCtrl]) {
        let expected = self.pipe.clock(actual[0]);
        assert_eq!(
            expected, actual,
            "fig. 5 violated: stage controls are not delayed copies of stage 0 \
             (cycle {})",
            self.cycles_checked
        );
        self.cycles_checked += 1;
    }

    /// Cycles validated so far.
    pub fn cycles_checked(&self) -> u64 {
        self.cycles_checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchConfig;
    use crate::rtl::PipelinedSwitch;
    use simkernel::cell::Packet;
    use simkernel::ids::{Addr, PortId};
    use simkernel::SplitMix64;

    #[test]
    fn pipeline_delays_by_stage_index() {
        let mut p = ControlPipeline::new(4);
        let w = StageCtrl::Write {
            addr: Addr(3),
            link: PortId(1),
        };
        let row0 = p.clock(w);
        assert_eq!(row0[0], w);
        assert_eq!(row0[1], StageCtrl::Nop);
        let row1 = p.clock(StageCtrl::Nop);
        assert_eq!(row1[0], StageCtrl::Nop);
        assert_eq!(
            row1[1], w,
            "stage 1 executes stage 0's word, one cycle late"
        );
        let row2 = p.clock(StageCtrl::Nop);
        assert_eq!(row2[2], w);
        let row3 = p.clock(StageCtrl::Nop);
        assert_eq!(row3[3], w);
        let row4 = p.clock(StageCtrl::Nop);
        assert!(row4.iter().all(|c| *c == StageCtrl::Nop), "flushed");
    }

    #[test]
    fn checker_validates_switch_under_random_traffic() {
        // The structural fig. 5 assertion, end to end: the RTL switch's
        // actual stage controls equal a real delay line's outputs, every
        // cycle, under heavy random traffic.
        let n = 4;
        let cfg = SwitchConfig::symmetric(n, 16);
        let s = cfg.stages();
        let mut sw = PipelinedSwitch::new(cfg);
        let mut checker = ControlChecker::new(s);
        let mut rng = SplitMix64::new(3);
        let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
        let mut next_id = 1u64;
        let mut wire = vec![None; n];
        for _ in 0..5_000u64 {
            let now = sw.now();
            for i in 0..n {
                if current[i].is_none() && rng.chance(0.7) {
                    let p = Packet::synth(next_id, i, rng.below_usize(n), s, now);
                    next_id += 1;
                    current[i] = Some((p, 0));
                }
                wire[i] = current[i].as_mut().map(|(p, k)| {
                    let w = p.words[*k];
                    *k += 1;
                    w
                });
                if current[i].as_ref().is_some_and(|(p, k)| *k == p.size_words) {
                    current[i] = None;
                }
            }
            sw.tick(&wire);
            checker.check(sw.stage_controls());
        }
        assert_eq!(checker.cycles_checked(), 5_000);
    }

    #[test]
    #[should_panic(expected = "fig. 5 violated")]
    fn checker_catches_a_forged_row() {
        let mut checker = ControlChecker::new(4);
        let nop_row = vec![StageCtrl::Nop; 4];
        checker.check(&nop_row);
        // Forge a row where stage 2 claims an operation stage 0 never
        // issued — a broken control pipeline.
        let mut forged = nop_row.clone();
        forged[2] = StageCtrl::Read {
            addr: Addr(0),
            link: PortId(0),
        };
        checker.check(&forged);
    }
}
