//! The half-quantum organization of §3.5.
//!
//! The straightforward pipelined memory requires the packet size to be a
//! multiple of the full buffer width (`2n` words for an `n×n` switch). To
//! handle packets of **half** that size (`n` words), §3.5 splits the
//! buffer into *two* pipelined memories of `n` stages each:
//!
//! > "In each and every cycle, one read operation of one outgoing packet
//! > is initiated from one of the two memories — whichever the desired
//! > packet happens to be in. In the same cycle, one write operation of
//! > one incoming packet must also be initiated; this will be initiated
//! > into the other one of the two memories."
//!
//! So the per-cycle initiation budget doubles (one read **and** one
//! write), which is exactly what `n`-word packets at full link rate
//! require: `n` inputs produce one packet per `n` cycles in aggregate one
//! write per cycle, and symmetrically for reads.
//!
//! [`HalfQuantumBuffer`] wraps two [`membank::PipelinedMemory`] instances
//! and enforces the §3.5 rule: a read and a write in the same cycle must
//! target different halves.

use membank::pipelined::{CompletedRead, PipelinedMemory, WaveOp};
use simkernel::ids::{Addr, Cycle};
use std::fmt;

/// Which of the two half-buffers a packet lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Half {
    /// First memory.
    A,
    /// Second memory.
    B,
}

impl Half {
    /// The other memory.
    pub fn other(self) -> Half {
        match self {
            Half::A => Half::B,
            Half::B => Half::A,
        }
    }

    fn index(self) -> usize {
        match self {
            Half::A => 0,
            Half::B => 1,
        }
    }
}

/// Where a stored packet lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    /// The half-buffer.
    pub half: Half,
    /// The slot within that half.
    pub addr: Addr,
}

/// Why a store or fetch was refused this cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HalfQError {
    /// A write was already initiated this cycle.
    WriteBudgetSpent,
    /// A read was already initiated this cycle.
    ReadBudgetSpent,
    /// §3.5 rule: the same-cycle read and write must use different halves.
    SameHalfConflict,
    /// The half the write is constrained to has no free slot.
    HalfFull(Half),
    /// Wrong word count for this buffer's packet size.
    WordCount {
        /// Words supplied.
        got: usize,
        /// Words required.
        want: usize,
    },
}

impl fmt::Display for HalfQError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HalfQError::WriteBudgetSpent => write!(f, "write already initiated this cycle"),
            HalfQError::ReadBudgetSpent => write!(f, "read already initiated this cycle"),
            HalfQError::SameHalfConflict => {
                write!(f, "read and write must target different halves (§3.5)")
            }
            HalfQError::HalfFull(h) => write!(f, "half {h:?} has no free slot"),
            HalfQError::WordCount { got, want } => {
                write!(f, "packet has {got} words, buffer stores {want}")
            }
        }
    }
}

impl std::error::Error for HalfQError {}

/// The two-half pipelined shared buffer for half-quantum packets.
#[derive(Debug)]
pub struct HalfQuantumBuffer {
    mems: [PipelinedMemory; 2],
    free: [Vec<Addr>; 2],
    read_this_cycle: Option<Half>,
    write_this_cycle: Option<Half>,
}

impl HalfQuantumBuffer {
    /// Two pipelined memories of `n` stages each, `depth` slots per half,
    /// `width_bits`-bit words. Stores packets of exactly `n` words.
    pub fn new(n: usize, depth: usize, width_bits: u32) -> Self {
        HalfQuantumBuffer {
            mems: [
                PipelinedMemory::new(n, depth, width_bits),
                PipelinedMemory::new(n, depth, width_bits),
            ],
            free: [
                (0..depth).rev().map(Addr).collect(),
                (0..depth).rev().map(Addr).collect(),
            ],
            read_this_cycle: None,
            write_this_cycle: None,
        }
    }

    /// Packet size in words (= stages per half).
    pub fn packet_words(&self) -> usize {
        self.mems[0].stages()
    }

    /// Free slots in each half.
    pub fn free_slots(&self) -> (usize, usize) {
        (self.free[0].len(), self.free[1].len())
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.mems[0].now()
    }

    fn check_write(&self, h: Half) -> Result<(), HalfQError> {
        if self.write_this_cycle.is_some() {
            return Err(HalfQError::WriteBudgetSpent);
        }
        if self.read_this_cycle == Some(h) {
            return Err(HalfQError::SameHalfConflict);
        }
        Ok(())
    }

    /// Initiate a write wave for a packet this cycle. The half is chosen
    /// automatically: the one *not* being read this cycle, preferring the
    /// emptier half when unconstrained.
    pub fn store(&mut self, words: Vec<u64>) -> Result<PacketHandle, HalfQError> {
        if words.len() != self.packet_words() {
            return Err(HalfQError::WordCount {
                got: words.len(),
                want: self.packet_words(),
            });
        }
        let half = match self.read_this_cycle {
            Some(read_half) => read_half.other(),
            None => {
                if self.free[0].len() >= self.free[1].len() {
                    Half::A
                } else {
                    Half::B
                }
            }
        };
        self.check_write(half)?;
        let addr = self.free[half.index()]
            .pop()
            .ok_or(HalfQError::HalfFull(half))?;
        self.mems[half.index()]
            .initiate(WaveOp::Write { addr, words })
            .expect("budget checked");
        self.write_this_cycle = Some(half);
        Ok(PacketHandle { half, addr })
    }

    /// Initiate a read wave for a stored packet this cycle. The slot is
    /// freed immediately (any later write wave trails the read).
    pub fn fetch(&mut self, h: PacketHandle) -> Result<(), HalfQError> {
        if self.read_this_cycle.is_some() {
            return Err(HalfQError::ReadBudgetSpent);
        }
        if self.write_this_cycle == Some(h.half) {
            return Err(HalfQError::SameHalfConflict);
        }
        self.mems[h.half.index()]
            .initiate(WaveOp::Read { addr: h.addr })
            .expect("budget checked");
        self.read_this_cycle = Some(h.half);
        self.free[h.half.index()].push(h.addr);
        Ok(())
    }

    /// Execute the cycle on both halves; returns completed reads tagged
    /// with their half.
    pub fn tick(&mut self) -> Vec<(Half, CompletedRead)> {
        self.read_this_cycle = None;
        self.write_this_cycle = None;
        let mut out = Vec::new();
        for (i, m) in self.mems.iter_mut().enumerate() {
            let half = if i == 0 { Half::A } else { Half::B };
            out.extend(m.tick().iter().map(|r| (half, r.clone())));
        }
        out
    }

    /// Idle until all waves complete.
    pub fn drain(&mut self) -> Vec<(Half, CompletedRead)> {
        let mut out = Vec::new();
        while self.mems.iter().any(|m| m.in_flight() > 0) {
            out.extend(self.tick());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|k| seed * 100 + k).collect()
    }

    #[test]
    fn store_then_fetch_roundtrips() {
        let mut b = HalfQuantumBuffer::new(4, 8, 64);
        let h = b.store(words(1, 4)).unwrap();
        b.tick();
        b.fetch(h).unwrap();
        let done = b.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.words, words(1, 4));
    }

    #[test]
    fn one_read_and_one_write_per_cycle() {
        let mut b = HalfQuantumBuffer::new(4, 8, 64);
        let h = b.store(words(1, 4)).unwrap();
        b.tick();
        // Same cycle: read h AND write a new packet — the full §3.5
        // budget. The write is steered to the other half automatically.
        b.fetch(h).unwrap();
        let h2 = b.store(words(2, 4)).unwrap();
        assert_ne!(h2.half, h.half, "write must use the other half");
        // Budgets are spent.
        assert_eq!(
            b.store(words(3, 4)).unwrap_err(),
            HalfQError::WriteBudgetSpent
        );
        assert_eq!(b.fetch(h2).unwrap_err(), HalfQError::ReadBudgetSpent);
        let done = b.drain();
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn sustained_full_throughput() {
        // The §3.5 scenario: one write and one read initiation in *every*
        // cycle indefinitely — aggregate throughput 2 packets per n
        // cycles higher than the full-quantum organization could do.
        let n = 4;
        let mut b = HalfQuantumBuffer::new(n, 64, 64);
        let mut stored: std::collections::VecDeque<(PacketHandle, u64)> =
            std::collections::VecDeque::new();
        let mut seed = 0u64;
        let mut fetched = 0u64;
        let mut completed = Vec::new();
        #[allow(clippy::explicit_counter_loop)] // `seed` is payload data, not a counter
        for _ in 0..1000 {
            // Read the oldest stored packet (if any), write a new one.
            if let Some(&(h, s)) = stored.front() {
                if b.fetch(h).is_ok() {
                    stored.pop_front();
                    fetched += 1;
                    let _ = s;
                }
            }
            let h = b.store(words(seed, n)).expect("write budget available");
            stored.push_back((h, seed));
            seed += 1;
            completed.extend(b.tick());
        }
        completed.extend(b.drain());
        assert!(fetched > 990, "sustained one read per cycle, got {fetched}");
        // Data integrity of everything read back.
        for (_, r) in &completed {
            let s = r.words[0] / 100;
            assert_eq!(r.words, words(s, n));
        }
    }

    #[test]
    fn same_half_conflict_detected() {
        let mut b = HalfQuantumBuffer::new(2, 1, 64);
        // Fill half A's only slot (store prefers A when free counts tie).
        let h = b.store(words(1, 2)).unwrap();
        assert_eq!(h.half, Half::A);
        b.tick();
        // Fetch from A, then a store is forced to B. Fill B first so the
        // forced store fails with HalfFull.
        let h2 = b.store(words(2, 2)).unwrap();
        assert_eq!(h2.half, Half::B);
        b.tick();
        b.fetch(h).unwrap(); // reading A
        let err = b.store(words(3, 2)).unwrap_err();
        assert_eq!(err, HalfQError::HalfFull(Half::B));
    }

    #[test]
    fn word_count_enforced() {
        let mut b = HalfQuantumBuffer::new(4, 4, 64);
        assert_eq!(
            b.store(words(1, 3)).unwrap_err(),
            HalfQError::WordCount { got: 3, want: 4 }
        );
    }

    #[test]
    fn fetch_frees_slot_for_reuse() {
        let mut b = HalfQuantumBuffer::new(2, 1, 64);
        let h1 = b.store(words(1, 2)).unwrap();
        b.tick();
        b.fetch(h1).unwrap();
        b.tick();
        // Half A's slot is free again; with B also free, A is preferred.
        let h2 = b.store(words(2, 2)).unwrap();
        assert_eq!(h2.half, Half::A);
        let done = b.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.words, words(1, 2));
        let _ = h2;
    }
}
