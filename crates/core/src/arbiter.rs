//! Wave arbitration (§3.3).
//!
//! Every cycle, at most one operation wave may be initiated (bank 0 has one
//! port). The arbiter chooses among pending read requests (one per outgoing
//! link with a packet ready) and pending write requests (one or two per
//! incoming link, each with a hard latch deadline).
//!
//! The paper's policy: "normally, higher priority is given to the outgoing
//! links, because any delay to supply data to an outgoing link leads to
//! idle time on that link, while delays to store incoming packets into the
//! buffer memory have no direct consequence." Among reads we rotate
//! round-robin for fairness; among writes we pick the earliest deadline
//! (EDF), which is what makes latch overruns impossible at the paper's
//! provisioning (experimentally verified — see the `rtl` tests).
//!
//! The alternative policies exist for the ablation benches: write priority
//! (how much output idle time does it cost?) and strict alternation.

use simkernel::ids::{Cycle, PortId};

/// Which class wins when both reads and writes are pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Reads first (the paper's choice).
    ReadPriority,
    /// Writes first (ablation).
    WritePriority,
    /// Alternate read/write cycles when both classes are pending
    /// (ablation).
    Alternate,
}

/// How the winning read is chosen among competing outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Rotating round-robin pointer (default; fair).
    #[default]
    RoundRobin,
    /// Lowest-numbered output wins (unfair; exists to make the fairness
    /// tests demonstrate *why* round-robin matters).
    Fixed,
}

/// A pending read request: output `port` wants to start a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReq {
    /// Requesting output link.
    pub port: PortId,
}

/// A pending write request: input `port` must store its packet no later
/// than `deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReq {
    /// Requesting input link.
    pub port: PortId,
    /// Last cycle at which initiation is still safe.
    pub deadline: Cycle,
}

/// The arbiter's decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Initiate a read wave for this output.
    Read(PortId),
    /// Initiate a write wave for this input.
    Write(PortId),
    /// Nothing to do.
    Idle,
}

/// Stateful wave arbiter.
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: ArbiterPolicy,
    read_policy: ReadPolicy,
    rr_read: usize,
    last_was_read: bool,
}

impl Arbiter {
    /// An arbiter with the given class policy and round-robin reads.
    pub fn new(policy: ArbiterPolicy) -> Self {
        Arbiter {
            policy,
            read_policy: ReadPolicy::RoundRobin,
            rr_read: 0,
            last_was_read: false,
        }
    }

    /// Override the read selection policy.
    pub fn with_read_policy(mut self, rp: ReadPolicy) -> Self {
        self.read_policy = rp;
        self
    }

    /// Choose the wave to initiate this cycle.
    ///
    /// `reads` and `writes` are the pending requests; both may be empty.
    /// Write selection is always earliest-deadline-first (ties broken by
    /// port number) — deadlines are physical (latch reuse), so no policy
    /// may reorder them.
    pub fn decide(&mut self, reads: &[ReadReq], writes: &[WriteReq]) -> Decision {
        let pick_read = |s: &Self| -> Option<PortId> {
            if reads.is_empty() {
                return None;
            }
            match s.read_policy {
                ReadPolicy::Fixed => reads.iter().map(|r| r.port).min(),
                ReadPolicy::RoundRobin => {
                    // First requesting port at or after the pointer,
                    // wrapping.
                    reads.iter().map(|r| r.port).min_by_key(|p| {
                        let i = p.index();
                        if i >= s.rr_read {
                            i - s.rr_read
                        } else {
                            // wrapped: order after the non-wrapped ones
                            i + usize::MAX / 2
                        }
                    })
                }
            }
        };
        let pick_write = || -> Option<PortId> {
            writes
                .iter()
                .min_by_key(|w| (w.deadline, w.port.index()))
                .map(|w| w.port)
        };

        let want_read_first = match self.policy {
            ArbiterPolicy::ReadPriority => true,
            ArbiterPolicy::WritePriority => false,
            ArbiterPolicy::Alternate => !self.last_was_read,
        };

        let decision = if want_read_first {
            pick_read(self)
                .map(Decision::Read)
                .or_else(|| pick_write().map(Decision::Write))
        } else {
            pick_write()
                .map(Decision::Write)
                .or_else(|| pick_read(self).map(Decision::Read))
        }
        .unwrap_or(Decision::Idle);

        match decision {
            Decision::Read(p) => {
                self.rr_read = p.index() + 1;
                self.last_was_read = true;
            }
            Decision::Write(_) => {
                self.last_was_read = false;
            }
            Decision::Idle => {}
        }
        decision
    }

    /// Bit-parallel form of [`Arbiter::decide`] for the dense stepping
    /// path: requests arrive as packed machine words instead of slices.
    ///
    /// Bit `j` of `read_mask` means output `j` requests a read; bit `i`
    /// of `write_mask` means input `i` requests a write whose latch
    /// deadline is `deadlines[i]` (entries outside the mask are ignored).
    /// Decision-for-decision identical to `decide` — same round-robin
    /// wrap order, same EDF tie-break on the lowest port, same policy
    /// state updates — which the `dense_matches_scalar_*` property tests
    /// pin over randomized request sequences. Ports ≥ 64 cannot be
    /// encoded; callers with wider fabrics use the slice form.
    pub fn decide_dense(
        &mut self,
        read_mask: u64,
        write_mask: u64,
        deadlines: &[Cycle],
    ) -> Decision {
        let pick_read = |s: &Self| -> Option<PortId> {
            if read_mask == 0 {
                return None;
            }
            let port = match s.read_policy {
                ReadPolicy::Fixed => read_mask.trailing_zeros(),
                ReadPolicy::RoundRobin => {
                    // First requesting port at or after the pointer,
                    // wrapping: mask off the ports below the pointer and
                    // take the lowest set bit; fall back to the lowest
                    // overall when everything wrapped.
                    let at_or_after =
                        read_mask & (u64::MAX.checked_shl(s.rr_read as u32)).unwrap_or(0);
                    if at_or_after != 0 {
                        at_or_after.trailing_zeros()
                    } else {
                        read_mask.trailing_zeros()
                    }
                }
            };
            Some(PortId(port as usize))
        };
        let pick_write = || -> Option<PortId> {
            let mut m = write_mask;
            let mut best: Option<(Cycle, usize)> = None;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let d = deadlines[i];
                // Strict `<` keeps the lowest port on deadline ties
                // (bits iterate in ascending port order).
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
            best.map(|(_, i)| PortId(i))
        };

        let want_read_first = match self.policy {
            ArbiterPolicy::ReadPriority => true,
            ArbiterPolicy::WritePriority => false,
            ArbiterPolicy::Alternate => !self.last_was_read,
        };

        let decision = if want_read_first {
            pick_read(self)
                .map(Decision::Read)
                .or_else(|| pick_write().map(Decision::Write))
        } else {
            pick_write()
                .map(Decision::Write)
                .or_else(|| pick_read(self).map(Decision::Read))
        }
        .unwrap_or(Decision::Idle);

        match decision {
            Decision::Read(p) => {
                self.rr_read = p.index() + 1;
                self.last_was_read = true;
            }
            Decision::Write(_) => {
                self.last_was_read = false;
            }
            Decision::Idle => {}
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: usize) -> ReadReq {
        ReadReq { port: PortId(p) }
    }

    fn w(p: usize, d: Cycle) -> WriteReq {
        WriteReq {
            port: PortId(p),
            deadline: d,
        }
    }

    #[test]
    fn read_priority_prefers_reads() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        assert_eq!(a.decide(&[r(1)], &[w(0, 5)]), Decision::Read(PortId(1)));
        assert_eq!(a.decide(&[], &[w(0, 5)]), Decision::Write(PortId(0)));
        assert_eq!(a.decide(&[], &[]), Decision::Idle);
    }

    #[test]
    fn write_priority_prefers_writes() {
        let mut a = Arbiter::new(ArbiterPolicy::WritePriority);
        assert_eq!(a.decide(&[r(1)], &[w(0, 5)]), Decision::Write(PortId(0)));
        assert_eq!(a.decide(&[r(1)], &[]), Decision::Read(PortId(1)));
    }

    #[test]
    fn writes_are_edf() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        let d = a.decide(&[], &[w(0, 9), w(1, 3), w(2, 7)]);
        assert_eq!(d, Decision::Write(PortId(1)));
        // Tie on deadline → lowest port.
        let d = a.decide(&[], &[w(2, 3), w(1, 3)]);
        assert_eq!(d, Decision::Write(PortId(1)));
    }

    #[test]
    fn reads_rotate_round_robin() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        let all = [r(0), r(1), r(2)];
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(0)));
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(1)));
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(2)));
        // Pointer wraps.
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(0)));
    }

    #[test]
    fn round_robin_skips_idle_ports() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        assert_eq!(a.decide(&[r(0), r(2)], &[]), Decision::Read(PortId(0)));
        // Pointer now at 1; port 1 not requesting → 2 wins.
        assert_eq!(a.decide(&[r(0), r(2)], &[]), Decision::Read(PortId(2)));
        assert_eq!(a.decide(&[r(0), r(2)], &[]), Decision::Read(PortId(0)));
    }

    #[test]
    fn fixed_read_policy_starves_high_ports() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority).with_read_policy(ReadPolicy::Fixed);
        for _ in 0..5 {
            assert_eq!(a.decide(&[r(0), r(1)], &[]), Decision::Read(PortId(0)));
        }
    }

    #[test]
    fn alternate_interleaves_classes() {
        let mut a = Arbiter::new(ArbiterPolicy::Alternate);
        let reads = [r(0)];
        let writes = [w(1, 99)];
        let d1 = a.decide(&reads, &writes);
        let d2 = a.decide(&reads, &writes);
        let d3 = a.decide(&reads, &writes);
        assert_ne!(
            std::mem::discriminant(&d1),
            std::mem::discriminant(&d2),
            "alternation must switch class"
        );
        assert_eq!(std::mem::discriminant(&d1), std::mem::discriminant(&d3));
    }

    #[test]
    fn alternate_falls_back_when_one_class_empty() {
        let mut a = Arbiter::new(ArbiterPolicy::Alternate);
        assert_eq!(a.decide(&[r(0)], &[]), Decision::Read(PortId(0)));
        assert_eq!(a.decide(&[r(0)], &[]), Decision::Read(PortId(0)));
    }

    /// Drive a scalar and a dense arbiter through the same randomized
    /// request sequence and assert every decision matches. The sequence
    /// matters (rr pointer and alternation state evolve), so this is a
    /// stateful equivalence check, not a single-shot one.
    fn check_dense_matches_scalar(policy: ArbiterPolicy, rp: ReadPolicy, seed: u64) {
        let n = 7usize; // odd, off power-of-two, exercises rr wrap
        let mut scalar = Arbiter::new(policy).with_read_policy(rp);
        let mut dense = Arbiter::new(policy).with_read_policy(rp);
        let mut rng = simkernel::SplitMix64::new(seed);
        for step in 0..2_000u64 {
            let read_mask = rng.next_u64() & rng.next_u64() & ((1u64 << n) - 1);
            let write_mask = rng.next_u64() & rng.next_u64() & ((1u64 << n) - 1);
            let mut deadlines = [Cycle::MAX; 7];
            let reads: Vec<ReadReq> = (0..n).filter(|j| read_mask >> j & 1 != 0).map(r).collect();
            let writes: Vec<WriteReq> = (0..n)
                .filter(|i| write_mask >> i & 1 != 0)
                .map(|i| {
                    // Small deadline range forces frequent EDF ties.
                    let d = step + rng.below(3);
                    deadlines[i] = d;
                    w(i, d)
                })
                .collect();
            let ds = scalar.decide(&reads, &writes);
            let dd = dense.decide_dense(read_mask, write_mask, &deadlines);
            assert_eq!(
                ds, dd,
                "seed {seed} step {step}: scalar {ds:?} != dense {dd:?} \
                 (reads {read_mask:#x}, writes {write_mask:#x})"
            );
        }
    }

    #[test]
    fn dense_matches_scalar_all_policies() {
        for policy in [
            ArbiterPolicy::ReadPriority,
            ArbiterPolicy::WritePriority,
            ArbiterPolicy::Alternate,
        ] {
            for rp in [ReadPolicy::RoundRobin, ReadPolicy::Fixed] {
                for seed in 0..4u64 {
                    check_dense_matches_scalar(policy, rp, 0xA5B + seed);
                }
            }
        }
    }

    #[test]
    fn dense_rr_pointer_at_64_wraps_cleanly() {
        // After granting port 63 the pointer sits at 64; the "at or
        // after" shift must not overflow into UB or a wrong pick.
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        let top = 1u64 << 63;
        assert_eq!(a.decide_dense(top, 0, &[]), Decision::Read(PortId(63)));
        assert_eq!(a.decide_dense(top | 1, 0, &[]), Decision::Read(PortId(0)));
    }
}
