//! Wave arbitration (§3.3).
//!
//! Every cycle, at most one operation wave may be initiated (bank 0 has one
//! port). The arbiter chooses among pending read requests (one per outgoing
//! link with a packet ready) and pending write requests (one or two per
//! incoming link, each with a hard latch deadline).
//!
//! The paper's policy: "normally, higher priority is given to the outgoing
//! links, because any delay to supply data to an outgoing link leads to
//! idle time on that link, while delays to store incoming packets into the
//! buffer memory have no direct consequence." Among reads we rotate
//! round-robin for fairness; among writes we pick the earliest deadline
//! (EDF), which is what makes latch overruns impossible at the paper's
//! provisioning (experimentally verified — see the `rtl` tests).
//!
//! The alternative policies exist for the ablation benches: write priority
//! (how much output idle time does it cost?) and strict alternation.

use simkernel::ids::{Cycle, PortId};

/// Which class wins when both reads and writes are pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Reads first (the paper's choice).
    ReadPriority,
    /// Writes first (ablation).
    WritePriority,
    /// Alternate read/write cycles when both classes are pending
    /// (ablation).
    Alternate,
}

/// How the winning read is chosen among competing outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Rotating round-robin pointer (default; fair).
    #[default]
    RoundRobin,
    /// Lowest-numbered output wins (unfair; exists to make the fairness
    /// tests demonstrate *why* round-robin matters).
    Fixed,
}

/// A pending read request: output `port` wants to start a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReq {
    /// Requesting output link.
    pub port: PortId,
}

/// A pending write request: input `port` must store its packet no later
/// than `deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReq {
    /// Requesting input link.
    pub port: PortId,
    /// Last cycle at which initiation is still safe.
    pub deadline: Cycle,
}

/// The arbiter's decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Initiate a read wave for this output.
    Read(PortId),
    /// Initiate a write wave for this input.
    Write(PortId),
    /// Nothing to do.
    Idle,
}

/// Stateful wave arbiter.
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: ArbiterPolicy,
    read_policy: ReadPolicy,
    rr_read: usize,
    last_was_read: bool,
}

impl Arbiter {
    /// An arbiter with the given class policy and round-robin reads.
    pub fn new(policy: ArbiterPolicy) -> Self {
        Arbiter {
            policy,
            read_policy: ReadPolicy::RoundRobin,
            rr_read: 0,
            last_was_read: false,
        }
    }

    /// Override the read selection policy.
    pub fn with_read_policy(mut self, rp: ReadPolicy) -> Self {
        self.read_policy = rp;
        self
    }

    /// Choose the wave to initiate this cycle.
    ///
    /// `reads` and `writes` are the pending requests; both may be empty.
    /// Write selection is always earliest-deadline-first (ties broken by
    /// port number) — deadlines are physical (latch reuse), so no policy
    /// may reorder them.
    pub fn decide(&mut self, reads: &[ReadReq], writes: &[WriteReq]) -> Decision {
        let pick_read = |s: &Self| -> Option<PortId> {
            if reads.is_empty() {
                return None;
            }
            match s.read_policy {
                ReadPolicy::Fixed => reads.iter().map(|r| r.port).min(),
                ReadPolicy::RoundRobin => {
                    // First requesting port at or after the pointer,
                    // wrapping.
                    reads.iter().map(|r| r.port).min_by_key(|p| {
                        let i = p.index();
                        if i >= s.rr_read {
                            i - s.rr_read
                        } else {
                            // wrapped: order after the non-wrapped ones
                            i + usize::MAX / 2
                        }
                    })
                }
            }
        };
        let pick_write = || -> Option<PortId> {
            writes
                .iter()
                .min_by_key(|w| (w.deadline, w.port.index()))
                .map(|w| w.port)
        };

        let want_read_first = match self.policy {
            ArbiterPolicy::ReadPriority => true,
            ArbiterPolicy::WritePriority => false,
            ArbiterPolicy::Alternate => !self.last_was_read,
        };

        let decision = if want_read_first {
            pick_read(self)
                .map(Decision::Read)
                .or_else(|| pick_write().map(Decision::Write))
        } else {
            pick_write()
                .map(Decision::Write)
                .or_else(|| pick_read(self).map(Decision::Read))
        }
        .unwrap_or(Decision::Idle);

        match decision {
            Decision::Read(p) => {
                self.rr_read = p.index() + 1;
                self.last_was_read = true;
            }
            Decision::Write(_) => {
                self.last_was_read = false;
            }
            Decision::Idle => {}
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: usize) -> ReadReq {
        ReadReq { port: PortId(p) }
    }

    fn w(p: usize, d: Cycle) -> WriteReq {
        WriteReq {
            port: PortId(p),
            deadline: d,
        }
    }

    #[test]
    fn read_priority_prefers_reads() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        assert_eq!(a.decide(&[r(1)], &[w(0, 5)]), Decision::Read(PortId(1)));
        assert_eq!(a.decide(&[], &[w(0, 5)]), Decision::Write(PortId(0)));
        assert_eq!(a.decide(&[], &[]), Decision::Idle);
    }

    #[test]
    fn write_priority_prefers_writes() {
        let mut a = Arbiter::new(ArbiterPolicy::WritePriority);
        assert_eq!(a.decide(&[r(1)], &[w(0, 5)]), Decision::Write(PortId(0)));
        assert_eq!(a.decide(&[r(1)], &[]), Decision::Read(PortId(1)));
    }

    #[test]
    fn writes_are_edf() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        let d = a.decide(&[], &[w(0, 9), w(1, 3), w(2, 7)]);
        assert_eq!(d, Decision::Write(PortId(1)));
        // Tie on deadline → lowest port.
        let d = a.decide(&[], &[w(2, 3), w(1, 3)]);
        assert_eq!(d, Decision::Write(PortId(1)));
    }

    #[test]
    fn reads_rotate_round_robin() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        let all = [r(0), r(1), r(2)];
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(0)));
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(1)));
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(2)));
        // Pointer wraps.
        assert_eq!(a.decide(&all, &[]), Decision::Read(PortId(0)));
    }

    #[test]
    fn round_robin_skips_idle_ports() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority);
        assert_eq!(a.decide(&[r(0), r(2)], &[]), Decision::Read(PortId(0)));
        // Pointer now at 1; port 1 not requesting → 2 wins.
        assert_eq!(a.decide(&[r(0), r(2)], &[]), Decision::Read(PortId(2)));
        assert_eq!(a.decide(&[r(0), r(2)], &[]), Decision::Read(PortId(0)));
    }

    #[test]
    fn fixed_read_policy_starves_high_ports() {
        let mut a = Arbiter::new(ArbiterPolicy::ReadPriority).with_read_policy(ReadPolicy::Fixed);
        for _ in 0..5 {
            assert_eq!(a.decide(&[r(0), r(1)], &[]), Decision::Read(PortId(0)));
        }
    }

    #[test]
    fn alternate_interleaves_classes() {
        let mut a = Arbiter::new(ArbiterPolicy::Alternate);
        let reads = [r(0)];
        let writes = [w(1, 99)];
        let d1 = a.decide(&reads, &writes);
        let d2 = a.decide(&reads, &writes);
        let d3 = a.decide(&reads, &writes);
        assert_ne!(
            std::mem::discriminant(&d1),
            std::mem::discriminant(&d2),
            "alternation must switch class"
        );
        assert_eq!(std::mem::discriminant(&d1), std::mem::discriminant(&d3));
    }

    #[test]
    fn alternate_falls_back_when_one_class_empty() {
        let mut a = Arbiter::new(ArbiterPolicy::Alternate);
        assert_eq!(a.decide(&[r(0)], &[]), Decision::Read(PortId(0)));
        assert_eq!(a.decide(&[r(0)], &[]), Decision::Read(PortId(0)));
    }
}
