//! Frozen scalar-reference oracles for the bit-parallel dense path.
//!
//! [`BehavioralSwitchRef`] and [`PipelinedSwitchRef`] are verbatim copies
//! of the models as they stood *before* the bit-parallel dense-path
//! rework: per-stage `for` loops, queue-walking arbitration scans, no
//! packed wave words. They are deliberately not maintained for speed —
//! their job is to be obviously equivalent to the published cycle-level
//! semantics so that:
//!
//! * the differential property test (`tests/bitparallel_diff.rs`) can pin
//!   the optimized models **byte-identical** to them — departures,
//!   drop/fault counters and the full probe event stream — across all
//!   memory organizations and a seeded load grid;
//! * the perf harness can measure the before/after dense-path speedup
//!   in-process, machine-portably, instead of trusting a committed
//!   baseline measured on different silicon.
//!
//! Any behavioral divergence between a model and its `*Ref` twin is a
//! bug in the optimized path, never in the reference: fix the model.

use crate::arbiter::{Arbiter, Decision, ReadReq, WriteReq};
use crate::behavioral::BehavioralDeparture;
use crate::bufmgr::{BufferManager, Descriptor};
use crate::config::SwitchConfig;
use crate::events::{IntegrityReason, SwitchCounters};
use crate::policy::{AdmitDecision, PolicyEngine, PolicyView, SharingPolicy};
use crate::rtl::{drop_reason, integrity_checksum, StageCtrl};
use membank::bank::{PortKind, SramBank};
use simkernel::cell::Packet;
use simkernel::ids::{Addr, Cycle, PortId};
use std::collections::VecDeque;
use telemetry::{ArbOutcome, DropReason, FaultTag, GaugeKind, ProbeEvent, ProbeHandle, WaveDir};

// ---------------------------------------------------------------------------
// Behavioral reference
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BhvPacket {
    id: u64,
    input: usize,
    dsts: u32,
    refs: u32,
    birth: Cycle,
    write_start: Option<Cycle>,
    output_was_idle: bool,
}

#[derive(Debug, Clone)]
struct PendingArrival {
    slot: usize,
    eligible: Cycle,
    deadline: Cycle,
}

/// The pre-rework cell-level model: scalar per-queue arbitration scans,
/// exactly as `BehavioralSwitch` executed them before the bit-parallel
/// dense path landed. See the module docs for why this copy exists.
#[derive(Debug)]
pub struct BehavioralSwitchRef {
    cfg: SwitchConfig,
    stages: usize,
    packets: Vec<Option<BhvPacket>>,
    free_slab: Vec<usize>,
    buf_used: usize,
    pending: Vec<VecDeque<PendingArrival>>,
    arriving: Vec<usize>,
    queues: Vec<VecDeque<usize>>,
    out_next_init: Vec<Cycle>,
    arb: Arbiter,
    cycle: Cycle,
    /// Packets dropped because the buffer pool was full.
    pub dropped: u64,
    /// Packets lost to latch overrun (must remain 0).
    pub overruns: u64,
    /// Packets accepted.
    pub arrived: u64,
    /// Packets rejected by a non-static sharing policy.
    pub policy_drops: u64,
    /// Buffered packets evicted by the sharing policy for an arrival.
    pub policy_preempts: u64,
    policy: PolicyEngine,
    policy_static: bool,
    departures: Vec<BehavioralDeparture>,
    in_tx: Vec<BehavioralDeparture>,
    probe: Option<ProbeHandle>,
    last_occ: u64,
    scratch_masks: Vec<Option<u32>>,
    scratch_done: Vec<BehavioralDeparture>,
    scratch_reads: Vec<ReadReq>,
    scratch_writes: Vec<WriteReq>,
}

impl BehavioralSwitchRef {
    /// Build from a configuration (same struct as the live models).
    pub fn new(cfg: SwitchConfig) -> Self {
        cfg.validate();
        let stages = cfg.stages();
        BehavioralSwitchRef {
            stages,
            packets: Vec::new(),
            free_slab: Vec::new(),
            buf_used: 0,
            pending: vec![VecDeque::new(); cfg.n_in],
            arriving: vec![0; cfg.n_in],
            queues: vec![VecDeque::new(); cfg.n_out],
            out_next_init: vec![0; cfg.n_out],
            arb: Arbiter::new(cfg.arbiter),
            cycle: 0,
            dropped: 0,
            overruns: 0,
            arrived: 0,
            policy_drops: 0,
            policy_preempts: 0,
            policy: cfg.policy.engine(cfg.n_out, stages),
            policy_static: cfg.policy.is_static(),
            departures: Vec::new(),
            in_tx: Vec::new(),
            probe: None,
            last_occ: 0,
            scratch_masks: Vec::with_capacity(cfg.n_in),
            scratch_done: Vec::new(),
            scratch_reads: Vec::with_capacity(cfg.n_out),
            scratch_writes: Vec::with_capacity(cfg.n_in),
            cfg,
        }
    }

    /// Attach a probe sink (same event stream as the live model).
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// True when an arrival can be offered on input `i` this cycle.
    pub fn input_free(&self, i: usize) -> bool {
        self.arriving[i] == 0
    }

    /// Advance one cycle; see `BehavioralSwitch::tick`.
    pub fn tick(&mut self, arrivals: &[Option<usize>]) -> &[BehavioralDeparture] {
        let mut masks = std::mem::take(&mut self.scratch_masks);
        masks.clear();
        masks.extend(arrivals.iter().map(|a| a.map(|d| 1u32 << d)));
        self.advance(&masks);
        self.scratch_masks = masks;
        &self.scratch_done
    }

    /// Advance one cycle with destination bitmasks.
    pub fn tick_masks(&mut self, arrivals: &[Option<u32>]) -> &[BehavioralDeparture] {
        self.advance(arrivals);
        &self.scratch_done
    }

    fn advance(&mut self, arrivals: &[Option<u32>]) {
        assert_eq!(arrivals.len(), self.cfg.n_in);
        let c = self.cycle;
        let s = self.stages as Cycle;

        // 1. Completed transmissions.
        let done = &mut self.scratch_done;
        done.clear();
        self.in_tx.retain(|d| {
            if d.done == c {
                done.push(*d);
                false
            } else {
                true
            }
        });
        self.departures.extend(done.iter().copied());
        if let Some(p) = &self.probe {
            for d in done.iter() {
                p.emit(
                    c,
                    ProbeEvent::Departed {
                        output: d.output,
                        id: d.id,
                        birth: d.birth,
                        latency: c - d.birth,
                    },
                );
            }
        }

        // 2. Arrivals.
        for (i, a) in arrivals.iter().enumerate() {
            if self.arriving[i] > 0 {
                assert!(a.is_none(), "arrival offered mid-packet on input {i}");
                self.arriving[i] -= 1;
                continue;
            }
            if let Some(mask) = a {
                let excess = mask.checked_shr(self.cfg.n_out as u32).unwrap_or(0);
                assert!(*mask != 0 && excess == 0, "bad destination mask {mask:#x}");
                self.arriving[i] = self.stages - 1;
                if self.policy_static {
                    if self.buf_used == self.cfg.slots {
                        self.dropped += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: 0,
                                    reason: DropReason::BufferFull,
                                },
                            );
                        }
                        continue;
                    }
                } else if !self.policy_admit(*mask, c) {
                    continue;
                }
                self.arrived += 1;
                self.buf_used += 1;
                let id = self.arrived;
                let primary = mask.trailing_zeros() as usize;
                let output_was_idle = mask.count_ones() == 1
                    && self.queues[primary].is_empty()
                    && self.out_next_init[primary] <= c + 1;
                let pkt = BhvPacket {
                    id,
                    input: i,
                    dsts: *mask,
                    refs: mask.count_ones(),
                    birth: c,
                    write_start: None,
                    output_was_idle,
                };
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::HeaderArrived {
                            input: i,
                            id,
                            dst: primary,
                        },
                    );
                }
                let slot = match self.free_slab.pop() {
                    Some(sl) => {
                        self.packets[sl] = Some(pkt);
                        sl
                    }
                    None => {
                        self.packets.push(Some(pkt));
                        self.packets.len() - 1
                    }
                };
                for j in 0..self.cfg.n_out {
                    if mask & (1 << j) != 0 {
                        self.queues[j].push_back(slot);
                    }
                }
                self.pending[i].push_back(PendingArrival {
                    slot,
                    eligible: c + 1,
                    deadline: c + s,
                });
            }
        }

        // 3. Latch-overrun sweep.
        for i in 0..self.cfg.n_in {
            while let Some(front) = self.pending[i].front() {
                if front.deadline >= c {
                    break;
                }
                let slot = front.slot;
                self.pending[i].pop_front();
                let p = self.packets[slot].take().expect("live packet");
                for j in 0..self.cfg.n_out {
                    if p.dsts & (1 << j) != 0 {
                        self.queues[j].retain(|&sl| sl != slot);
                    }
                }
                self.free_slab.push(slot);
                self.buf_used -= 1;
                self.overruns += 1;
                if let Some(probe) = &self.probe {
                    probe.emit(
                        c,
                        ProbeEvent::Drop {
                            id: p.id,
                            reason: DropReason::LatchOverrun,
                        },
                    );
                }
            }
        }

        // 4. Arbitration (scalar scans).
        let mut reads = std::mem::take(&mut self.scratch_reads);
        reads.clear();
        for j in 0..self.cfg.n_out {
            if c < self.out_next_init[j] {
                continue;
            }
            if let Some(&slot) = self.queues[j].front() {
                let p = self.packets[slot].as_ref().expect("queued packet live");
                let ready = match p.write_start {
                    None => false,
                    Some(ws) => {
                        if self.cfg.cut_through {
                            ws < c
                        } else {
                            c >= ws + s
                        }
                    }
                };
                if ready {
                    reads.push(ReadReq {
                        port: simkernel::ids::PortId(j),
                    });
                }
            }
        }
        let mut writes = std::mem::take(&mut self.scratch_writes);
        writes.clear();
        for (i, q) in self.pending.iter().enumerate() {
            if let Some(front) = q.front() {
                if front.eligible <= c {
                    writes.push(WriteReq {
                        port: simkernel::ids::PortId(i),
                        deadline: front.deadline,
                    });
                }
            }
        }
        let decision = self.arb.decide(&reads, &writes);
        if !reads.is_empty() || !writes.is_empty() {
            if let Some(p) = &self.probe {
                let outcome = match decision {
                    Decision::Read(_) => ArbOutcome::Read,
                    Decision::Write(_) => ArbOutcome::Write,
                    Decision::Idle => ArbOutcome::Idle,
                };
                p.emit(
                    c,
                    ProbeEvent::Arbitration {
                        reads: reads.len(),
                        writes: writes.len(),
                        outcome,
                    },
                );
            }
        }
        match decision {
            Decision::Read(j) => self.start_read(j.index(), c, false),
            Decision::Write(i) => {
                let pw = self.pending[i.index()].pop_front().expect("granted");
                let (dsts, fusable);
                {
                    let p = self.packets[pw.slot].as_mut().expect("live");
                    p.write_start = Some(c);
                    dsts = p.dsts;
                    fusable = self.cfg.fused_cut_through;
                }
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::WriteWave {
                            input: i.index(),
                            addr: pw.slot,
                        },
                    );
                }
                if fusable {
                    for j in 0..self.cfg.n_out {
                        if dsts & (1 << j) == 0 {
                            continue;
                        }
                        if c >= self.out_next_init[j] && self.queues[j].front() == Some(&pw.slot) {
                            self.start_read(j, c, true);
                            break;
                        }
                    }
                }
            }
            Decision::Idle => {}
        }
        self.scratch_reads = reads;
        self.scratch_writes = writes;

        if let Some(p) = &self.probe {
            let occ = self.buf_used as u64;
            if occ != self.last_occ {
                self.last_occ = occ;
                p.emit(
                    c,
                    ProbeEvent::Gauge {
                        gauge: GaugeKind::Occupancy,
                        index: 0,
                        value: occ,
                    },
                );
            }
        }
        self.cycle = c + 1;
    }

    /// One non-static admission decision (scalar twin of the live
    /// model's `policy_admit`; same view, same evictability rule).
    fn policy_admit(&mut self, mask: u32, c: Cycle) -> bool {
        let dst = mask.trailing_zeros() as usize;
        let qlens: Vec<usize> = self.queues.iter().map(|q| q.len()).collect();
        let decision = self.policy.admit(&PolicyView {
            occupancy: self.buf_used,
            capacity: self.cfg.slots,
            n_out: self.cfg.n_out,
            dst,
            qlens: &qlens,
        });
        let admitted = match decision {
            AdmitDecision::Accept => true,
            AdmitDecision::Reject => false,
            AdmitDecision::Preempt { victim } => self.evict_rearmost(victim, c),
        };
        if !admitted {
            self.policy_drops += 1;
            if let Some(p) = &self.probe {
                p.emit(
                    c,
                    ProbeEvent::Drop {
                        id: 0,
                        reason: DropReason::AdmissionPolicy,
                    },
                );
            }
        }
        admitted
    }

    /// Evict the rearmost evictable packet of queue `victim` (write wave
    /// fully retired, no copy in transmission); see the live model.
    fn evict_rearmost(&mut self, victim: usize, c: Cycle) -> bool {
        let s = self.stages as Cycle;
        let mut found = None;
        for idx in (0..self.queues[victim].len()).rev() {
            let slot = self.queues[victim][idx];
            let p = self.packets[slot].as_ref().expect("queued slot is live");
            if p.write_start.is_none_or(|ws| c < ws + s) {
                continue;
            }
            if p.refs != p.dsts.count_ones() {
                continue;
            }
            found = Some(slot);
            break;
        }
        let Some(slot) = found else {
            return false;
        };
        let p = self.packets[slot].take().expect("live packet");
        for j in 0..self.cfg.n_out {
            if p.dsts & (1 << j) != 0 {
                self.queues[j].retain(|&sl| sl != slot);
            }
        }
        self.free_slab.push(slot);
        self.buf_used -= 1;
        self.policy_preempts += 1;
        if let Some(pr) = &self.probe {
            pr.emit(
                c,
                ProbeEvent::Drop {
                    id: p.id,
                    reason: DropReason::Preempted,
                },
            );
        }
        true
    }

    fn start_read(&mut self, j: usize, c: Cycle, fused: bool) {
        let slot = self.queues[j].pop_front().expect("read from empty queue");
        let dep = {
            let p = self.packets[slot].as_mut().expect("live packet");
            debug_assert!(p.refs > 0);
            p.refs -= 1;
            BehavioralDeparture {
                id: p.id,
                input: p.input,
                output: j,
                birth: p.birth,
                read_start: c,
                done: c + self.stages as Cycle,
                output_was_idle: p.output_was_idle,
            }
        };
        if let Some(p) = &self.probe {
            p.emit(
                c,
                ProbeEvent::ReadWave {
                    output: j,
                    addr: slot,
                    fused,
                },
            );
            let ws = self.packets[slot]
                .as_ref()
                .and_then(|p| p.write_start)
                .unwrap_or(c);
            if fused || (self.cfg.cut_through && c < ws + self.stages as Cycle) {
                p.emit(
                    c,
                    ProbeEvent::CutThrough {
                        output: j,
                        id: dep.id,
                        fused,
                    },
                );
            }
            if !fused {
                let earliest = if self.cfg.cut_through {
                    ws + 1
                } else {
                    ws + self.stages as Cycle
                };
                if c > earliest {
                    p.emit(
                        c,
                        ProbeEvent::StaggeredStart {
                            output: j,
                            id: dep.id,
                        },
                    );
                }
            }
        }
        if !self.policy_static {
            // BShare queueing-delay signal: birth-to-read latency.
            self.policy.on_read(j, c - dep.birth);
        }
        if self.packets[slot].as_ref().expect("live").refs == 0 {
            self.packets[slot] = None;
            self.free_slab.push(slot);
            self.buf_used -= 1;
        }
        self.out_next_init[j] = c + self.stages as Cycle;
        self.in_tx.push(dep);
    }

    /// All departures so far (accumulating).
    pub fn departures(&self) -> &[BehavioralDeparture] {
        &self.departures
    }

    /// True when the switch holds nothing.
    pub fn is_quiescent(&self) -> bool {
        self.buf_used == 0 && self.in_tx.is_empty() && self.arriving.iter().all(|&a| a == 0)
    }

    /// Run idle cycles until quiescent, appending completed departures
    /// to `out` (watchdog-bounded by `limit`).
    pub fn drain_into(
        &mut self,
        limit: u64,
        out: &mut Vec<BehavioralDeparture>,
    ) -> Result<Cycle, simkernel::SimError> {
        let n_in = self.cfg.n_in;
        simkernel::horizon::drain(self, limit, "behavioral-ref drain", |sw| {
            let mut masks = std::mem::take(&mut sw.scratch_masks);
            masks.clear();
            masks.resize(n_in, None);
            sw.advance(&masks);
            sw.scratch_masks = masks;
            out.extend(sw.scratch_done.iter().copied());
        })
    }
}

impl simkernel::Horizon for BehavioralSwitchRef {
    fn now(&self) -> Cycle {
        self.cycle
    }

    fn next_event(&self) -> Option<Cycle> {
        if self.is_quiescent() {
            return None;
        }
        let now = self.cycle;
        let s = self.stages as Cycle;
        let mut ev: Option<Cycle> = None;
        let fold = |ev: &mut Option<Cycle>, c: Cycle| {
            *ev = Some(ev.map_or(c, |e| e.min(c)));
        };
        for d in &self.in_tx {
            fold(&mut ev, d.done);
        }
        for q in &self.pending {
            if let Some(front) = q.front() {
                fold(&mut ev, front.eligible);
            }
        }
        for (j, q) in self.queues.iter().enumerate() {
            if let Some(&slot) = q.front() {
                let p = self.packets[slot].as_ref().expect("queued packet live");
                if let Some(ws) = p.write_start {
                    let ready = if self.cfg.cut_through { ws + 1 } else { ws + s };
                    fold(&mut ev, ready.max(self.out_next_init[j]));
                }
            }
        }
        match ev {
            Some(e) => Some(e),
            None if self.buf_used == 0 && self.in_tx.is_empty() => {
                let max_arr = self.arriving.iter().copied().max().unwrap_or(0) as Cycle;
                Some(now + max_arr)
            }
            None => Some(now),
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.cycle, "jump_to moves time forward only");
        let delta = (target - self.cycle) as usize;
        for a in &mut self.arriving {
            *a = a.saturating_sub(delta);
        }
        self.scratch_done.clear();
        self.cycle = target;
    }
}

// ---------------------------------------------------------------------------
// RTL (word-level) reference
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct OutBinding {
    out: PortId,
    id: u64,
    birth: Cycle,
}

#[derive(Debug, Clone)]
struct ActiveWave {
    start: Cycle,
    addr: Addr,
    write_from: Option<PortId>,
    read_to: Option<OutBinding>,
}

#[derive(Debug, Clone, Copy)]
struct OutWord {
    link: PortId,
    word: u64,
    tail_of: Option<(u64, Cycle)>,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    addr: Addr,
    eligible: Cycle,
    deadline: Cycle,
}

#[derive(Debug, Clone, Default)]
struct InputState {
    k: usize,
    pending: VecDeque<PendingWrite>,
    addr: Option<Addr>,
    cur_id: u64,
    chk: u64,
    expected_id: Option<u64>,
    corrupt: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct OutVerify {
    id: u64,
    k: usize,
    corrupt: bool,
}

/// The pre-rework word-level model: per-stage bank sweeps via a wave
/// `Vec` + `retain`, eager `begin_cycle` over every bank, scalar
/// arbitration scans. See the module docs for why this copy exists.
#[derive(Debug)]
pub struct PipelinedSwitchRef {
    cfg: SwitchConfig,
    stages: usize,
    banks: Vec<SramBank>,
    latches: Vec<Vec<u64>>,
    latch_loads: Vec<(usize, usize, u64)>,
    inputs: Vec<InputState>,
    outreg_cur: Vec<Option<OutWord>>,
    outreg_next: Vec<Option<OutWord>>,
    out_next_init: Vec<Cycle>,
    out_verify: Vec<OutVerify>,
    stuck_write: Option<(usize, Cycle)>,
    mgr: BufferManager,
    policy: PolicyEngine,
    policy_static: bool,
    arb: Arbiter,
    waves: Vec<ActiveWave>,
    cycle: Cycle,
    counters: SwitchCounters,
    probe: Option<ProbeHandle>,
    last_occ: u64,
    last_qdepth: Vec<u64>,
    last_controls: Vec<StageCtrl>,
    wire_out: Vec<Option<u64>>,
    scratch_reads: Vec<ReadReq>,
    scratch_writes: Vec<WriteReq>,
    scratch_dsts: Vec<PortId>,
}

impl PipelinedSwitchRef {
    /// Build a switch from a validated configuration.
    pub fn new(cfg: SwitchConfig) -> Self {
        cfg.validate();
        let stages = cfg.stages();
        let banks = (0..stages)
            .map(|_| SramBank::new(cfg.slots, 64, PortKind::SinglePort))
            .collect();
        PipelinedSwitchRef {
            stages,
            banks,
            latches: vec![vec![0; stages]; cfg.n_in],
            latch_loads: Vec::new(),
            inputs: vec![InputState::default(); cfg.n_in],
            outreg_cur: vec![None; stages],
            outreg_next: vec![None; stages],
            out_next_init: vec![0; cfg.n_out],
            out_verify: vec![OutVerify::default(); cfg.n_out],
            stuck_write: None,
            mgr: BufferManager::new(cfg.slots, cfg.n_out),
            policy: cfg.policy.engine(cfg.n_out, stages),
            policy_static: cfg.policy.is_static(),
            arb: Arbiter::new(cfg.arbiter),
            waves: Vec::new(),
            cycle: 0,
            counters: SwitchCounters::default(),
            probe: None,
            last_occ: 0,
            last_qdepth: vec![0; cfg.n_out],
            last_controls: vec![StageCtrl::Nop; stages],
            wire_out: vec![None; cfg.n_out],
            scratch_reads: Vec::with_capacity(cfg.n_out),
            scratch_writes: Vec::with_capacity(cfg.n_in),
            scratch_dsts: Vec::with_capacity(cfg.n_out),
            cfg,
        }
    }

    /// One non-static admission decision, scalar form (fresh queue-length
    /// `Vec` each call — the reference is deliberately not maintained for
    /// speed). Mirrors `PipelinedSwitch::policy_admit` decision for
    /// decision, including the evictability rule.
    #[allow(clippy::too_many_arguments)] // associated fn over disjoint field borrows
    fn policy_admit(
        policy: &mut PolicyEngine,
        mgr: &mut BufferManager,
        counters: &mut SwitchCounters,
        probe: &Option<ProbeHandle>,
        n_out: usize,
        slots: usize,
        stages: usize,
        dst: usize,
        c: Cycle,
    ) -> bool {
        let s = stages as Cycle;
        let qlens: Vec<usize> = (0..n_out).map(|j| mgr.queue_len_live(PortId(j))).collect();
        let decision = policy.admit(&PolicyView {
            occupancy: mgr.occupancy(),
            capacity: slots,
            n_out,
            dst,
            qlens: &qlens,
        });
        match decision {
            AdmitDecision::Accept => true,
            AdmitDecision::Reject => false,
            AdmitDecision::Preempt { victim } => {
                let addr = mgr.rearmost_matching(PortId(victim), |d, refs| {
                    d.write_start.is_some_and(|ws| c >= ws + s) && refs == d.fanout()
                });
                match addr {
                    Some(a) => {
                        let d = mgr.evict(a);
                        counters.policy_preempts += 1;
                        if let Some(p) = probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: d.id,
                                    reason: DropReason::Preempted,
                                },
                            );
                        }
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Attach a probe sink (same event stream as the live model).
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Aggregate counters.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// The configuration this switch was built with.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// The per-stage control signals of the most recent cycle.
    pub fn stage_controls(&self) -> &[StageCtrl] {
        &self.last_controls
    }

    fn banks_checksum(&self, addr: Addr) -> u64 {
        integrity_checksum(self.banks.iter().map(|b| b.peek(addr)))
    }

    /// True if the switch holds no packets and no waves are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.mgr.occupancy() == 0
            && self.waves.is_empty()
            && self.outreg_cur.iter().all(Option::is_none)
            && self.inputs.iter().all(|s| s.k == 0 && s.pending.is_empty())
    }

    /// Advance one clock cycle; see `PipelinedSwitch::tick`.
    pub fn tick(&mut self, wire_in: &[Option<u64>]) -> &[Option<u64>] {
        assert_eq!(wire_in.len(), self.cfg.n_in, "one word slot per input");
        let c = self.cycle;
        let s = self.stages;

        // 1. Output links driven by the register row committed last cycle.
        let mut wire_out = std::mem::take(&mut self.wire_out);
        wire_out.clear();
        wire_out.resize(self.cfg.n_out, None);
        for ow in self.outreg_cur.iter().flatten() {
            let j = ow.link.index();
            assert!(
                wire_out[j].is_none(),
                "two output registers drove link {j} in cycle {c}"
            );
            wire_out[j] = Some(ow.word);
            if self.cfg.integrity.payload_check {
                let v = &mut self.out_verify[j];
                if v.k == 0 {
                    let (mask, id) = Packet::decode_header_any(ow.word);
                    v.id = id;
                    v.corrupt = mask & (1 << j) == 0;
                } else if ow.word != Packet::payload_word(v.id, v.k) {
                    v.corrupt = true;
                }
                v.k += 1;
            }
            if let Some((id, birth)) = ow.tail_of {
                self.counters.departed += 1;
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Departed {
                            output: j,
                            id,
                            birth,
                            latency: c - birth,
                        },
                    );
                }
                if self.cfg.integrity.payload_check {
                    if self.out_verify[j].corrupt {
                        self.counters.corrupt_delivered += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Fault {
                                    id,
                                    kind: FaultTag::CorruptDelivered,
                                },
                            );
                        }
                    }
                    self.out_verify[j] = OutVerify::default();
                }
            }
        }

        // 2. Input arrivals.
        self.latch_loads.clear();
        for (i, w) in wire_in.iter().enumerate() {
            let st = &mut self.inputs[i];
            match w {
                Some(word) => {
                    if st.k == 0 {
                        let (mask, id) = Packet::decode_header_any(*word);
                        st.addr = None;
                        st.chk = 0;
                        st.corrupt = false;
                        st.expected_id = None;
                        let bad = mask == 0 || (mask >> self.cfg.n_out) != 0;
                        if bad && self.cfg.integrity.harden {
                            self.counters.arrived += 1;
                            self.counters.corrupt_drops += 1;
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::Drop {
                                        id,
                                        reason: DropReason::BadHeader,
                                    },
                                );
                            }
                        } else {
                            assert!(
                                !bad,
                                "packet {id} on input {i} addressed nonexistent outputs                              (mask {mask:#x}, {} outputs)",
                                self.cfg.n_out
                            );
                            let desc = Descriptor::multicast(id, PortId(i), mask, c);
                            self.counters.arrived += 1;
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::HeaderArrived {
                                        input: i,
                                        id,
                                        dst: desc.dst.index(),
                                    },
                                );
                            }
                            st.expected_id = self.cfg.integrity.payload_check.then_some(id);
                            st.cur_id = id;
                            let refused = !self.policy_static
                                && !Self::policy_admit(
                                    &mut self.policy,
                                    &mut self.mgr,
                                    &mut self.counters,
                                    &self.probe,
                                    self.cfg.n_out,
                                    self.cfg.slots,
                                    self.stages,
                                    desc.dst.index(),
                                    c,
                                );
                            if refused {
                                self.counters.policy_drops += 1;
                                if let Some(p) = &self.probe {
                                    p.emit(
                                        c,
                                        ProbeEvent::Drop {
                                            id,
                                            reason: DropReason::AdmissionPolicy,
                                        },
                                    );
                                }
                            } else {
                                match self.mgr.alloc(desc) {
                                    Some(addr) => {
                                        st.addr = Some(addr);
                                        st.pending.push_back(PendingWrite {
                                            addr,
                                            eligible: c + 1,
                                            deadline: c + s as Cycle,
                                        });
                                    }
                                    None => {
                                        self.counters.dropped_buffer_full += 1;
                                        if let Some(p) = &self.probe {
                                            p.emit(
                                                c,
                                                ProbeEvent::Drop {
                                                    id,
                                                    reason: DropReason::BufferFull,
                                                },
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    } else if let Some(id) = st.expected_id {
                        if *word != Packet::payload_word(id, st.k) {
                            st.corrupt = true;
                        }
                    }
                    st.chk = st.chk.rotate_left(1) ^ *word;
                    self.latch_loads.push((i, st.k, *word));
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::LatchLoad {
                                input: i,
                                stage: st.k,
                            },
                        );
                    }
                    st.k += 1;
                    if st.k == s {
                        st.k = 0;
                        if let Some(addr) = st.addr.take() {
                            let still_ours =
                                self.mgr.descriptor(addr).is_some_and(|d| d.id == st.cur_id);
                            if still_ours {
                                if st.corrupt {
                                    self.mgr.poison(addr, IntegrityReason::PayloadMismatch);
                                }
                                if self.cfg.integrity.checksum {
                                    self.mgr.set_checksum(addr, st.chk);
                                }
                            }
                        }
                        st.expected_id = None;
                    }
                }
                None => {
                    if st.k != 0 && self.cfg.integrity.harden {
                        if let Some(addr) = st.addr.take() {
                            if let Some(pos) = st.pending.iter().position(|p| p.addr == addr) {
                                st.pending.remove(pos);
                                let d = self.mgr.release(addr);
                                self.counters.corrupt_drops += 1;
                                if let Some(p) = &self.probe {
                                    p.emit(
                                        c,
                                        ProbeEvent::Drop {
                                            id: d.id,
                                            reason: DropReason::Truncated,
                                        },
                                    );
                                }
                            } else if self.mgr.descriptor(addr).is_some_and(|d| d.id == st.cur_id) {
                                self.mgr.poison(addr, IntegrityReason::TruncatedPacket);
                            }
                        }
                        st.k = 0;
                        st.chk = 0;
                        st.corrupt = false;
                        st.expected_id = None;
                    } else {
                        assert!(
                            st.k == 0,
                            "link protocol violation: idle cycle inside a packet on input {i}"
                        );
                    }
                }
            }
        }

        // 3. Latch-overrun sweep.
        for i in 0..self.cfg.n_in {
            while let Some(front) = self.inputs[i].pending.front() {
                if front.deadline >= c {
                    break;
                }
                let addr = front.addr;
                self.inputs[i].pending.pop_front();
                let d = self.mgr.release(addr);
                self.counters.latch_overruns += 1;
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Drop {
                            id: d.id,
                            reason: DropReason::LatchOverrun,
                        },
                    );
                }
            }
        }

        // 4. Arbitration (scalar scans).
        let mut reads = std::mem::take(&mut self.scratch_reads);
        reads.clear();
        for j in 0..self.cfg.n_out {
            if c < self.out_next_init[j] {
                continue;
            }
            if let Some((_, d)) = self.mgr.head(PortId(j)) {
                let ready = match d.write_start {
                    None => false,
                    Some(ws) => {
                        if self.cfg.cut_through {
                            ws < c
                        } else {
                            c >= ws + s as Cycle
                        }
                    }
                };
                if ready {
                    reads.push(ReadReq { port: PortId(j) });
                }
            }
        }
        let mut writes = std::mem::take(&mut self.scratch_writes);
        writes.clear();
        for (i, st) in self.inputs.iter().enumerate() {
            if let Some(front) = st.pending.front() {
                if front.eligible <= c {
                    writes.push(WriteReq {
                        port: PortId(i),
                        deadline: front.deadline,
                    });
                }
            }
        }
        let had_work = !reads.is_empty() || !writes.is_empty();
        if !reads.is_empty() && !writes.is_empty() {
            self.counters.rw_collisions += 1;
        }
        let decision = self.arb.decide(&reads, &writes);
        if had_work {
            if let Some(p) = &self.probe {
                let outcome = match decision {
                    Decision::Read(_) => ArbOutcome::Read,
                    Decision::Write(_) => ArbOutcome::Write,
                    Decision::Idle => ArbOutcome::Idle,
                };
                p.emit(
                    c,
                    ProbeEvent::Arbitration {
                        reads: reads.len(),
                        writes: writes.len(),
                        outcome,
                    },
                );
            }
        }
        match decision {
            Decision::Read(j) => {
                let (addr, d, freed) = self.mgr.pop_and_free(j);
                let scrub_fail = self.cfg.integrity.checksum
                    && d.write_start.is_some_and(|ws| c >= ws + s as Cycle)
                    && d.checksum
                        .is_some_and(|sum| self.banks_checksum(addr) != sum);
                if d.poisoned.is_some() || scrub_fail {
                    if freed {
                        self.counters.corrupt_drops += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: d.id,
                                    reason: drop_reason(
                                        d.poisoned.unwrap_or(IntegrityReason::ChecksumMismatch),
                                    ),
                                },
                            );
                        }
                    }
                } else {
                    self.out_next_init[j.index()] = c + s as Cycle;
                    if !self.policy_static {
                        self.policy.on_read(j.index(), c - d.birth);
                    }
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::ReadWave {
                                output: j.index(),
                                addr: addr.index(),
                                fused: false,
                            },
                        );
                        let earliest = d.write_start.map(|ws| {
                            if self.cfg.cut_through {
                                ws + 1
                            } else {
                                ws + s as Cycle
                            }
                        });
                        if earliest.is_some_and(|e| c > e) {
                            p.emit(
                                c,
                                ProbeEvent::StaggeredStart {
                                    output: j.index(),
                                    id: d.id,
                                },
                            );
                        }
                        if d.write_start.is_some_and(|ws| c < ws + s as Cycle) {
                            p.emit(
                                c,
                                ProbeEvent::CutThrough {
                                    output: j.index(),
                                    id: d.id,
                                    fused: false,
                                },
                            );
                        }
                    }
                    self.waves.push(ActiveWave {
                        start: c,
                        addr,
                        write_from: None,
                        read_to: Some(OutBinding {
                            out: j,
                            id: d.id,
                            birth: d.birth,
                        }),
                    });
                }
            }
            Decision::Write(i) => {
                let pw = self.inputs[i.index()]
                    .pending
                    .pop_front()
                    .expect("arbiter granted a write with no pending request");
                self.mgr.mark_write_started(pw.addr, c);
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::WriteWave {
                            input: i.index(),
                            addr: pw.addr.index(),
                        },
                    );
                }
                let mut wave = ActiveWave {
                    start: c,
                    addr: pw.addr,
                    write_from: Some(i),
                    read_to: None,
                };
                let d = self.mgr.descriptor(pw.addr).expect("just marked");
                if self.cfg.fused_cut_through && d.poisoned.is_none() {
                    let (id, birth) = (d.id, d.birth);
                    let mut dsts = std::mem::take(&mut self.scratch_dsts);
                    dsts.clear();
                    dsts.extend(d.destinations());
                    for &dst in &dsts {
                        if c < self.out_next_init[dst.index()] {
                            continue;
                        }
                        let head_matches = matches!(
                            self.mgr.head(dst),
                            Some((head_addr, _)) if head_addr == pw.addr
                        );
                        if !head_matches {
                            continue;
                        }
                        let (addr2, d2, _freed) = self.mgr.pop_and_free(dst);
                        debug_assert_eq!(addr2, pw.addr);
                        debug_assert_eq!(d2.id, id);
                        self.out_next_init[dst.index()] = c + s as Cycle;
                        if !self.policy_static {
                            self.policy.on_read(dst.index(), c - d2.birth);
                        }
                        self.counters.fused_reads += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::ReadWave {
                                    output: dst.index(),
                                    addr: pw.addr.index(),
                                    fused: true,
                                },
                            );
                            p.emit(
                                c,
                                ProbeEvent::CutThrough {
                                    output: dst.index(),
                                    id,
                                    fused: true,
                                },
                            );
                        }
                        wave.read_to = Some(OutBinding {
                            out: dst,
                            id,
                            birth,
                        });
                        break;
                    }
                    self.scratch_dsts = dsts;
                }
                self.waves.push(wave);
            }
            Decision::Idle => {
                if had_work {
                    self.counters.idle_with_work += 1;
                }
            }
        }
        self.scratch_reads = reads;
        self.scratch_writes = writes;

        // 5. Stage execution (eager begin_cycle over every bank).
        for b in &mut self.banks {
            b.begin_cycle(c);
        }
        for ctrl in self.last_controls.iter_mut() {
            *ctrl = StageCtrl::Nop;
        }
        for w in &self.waves {
            let k = (c - w.start) as usize;
            debug_assert!(k < s);
            let bank = &mut self.banks[k];
            let bus_value = match w.write_from {
                Some(i) => {
                    let v = self.latches[i.index()][k];
                    let stuck = self
                        .stuck_write
                        .is_some_and(|(ks, until)| ks == k && c <= until);
                    if stuck {
                        self.counters.writes_suppressed += 1;
                    } else {
                        bank.write(w.addr, v)
                            .expect("wave stagger guarantees bank availability");
                    }
                    Some(v)
                }
                None => None,
            };
            if let Some(rb) = &w.read_to {
                let v = match bus_value {
                    Some(v) => v,
                    None => bank
                        .read(w.addr)
                        .expect("wave stagger guarantees bank availability"),
                };
                debug_assert!(
                    self.outreg_next[k].is_none(),
                    "two waves loaded output register {k} in cycle {c}"
                );
                self.outreg_next[k] = Some(OutWord {
                    link: rb.out,
                    word: v,
                    tail_of: (k + 1 == s).then_some((rb.id, rb.birth)),
                });
            }
            self.last_controls[k] = match (&w.write_from, &w.read_to) {
                (Some(i), None) => StageCtrl::Write {
                    addr: w.addr,
                    link: *i,
                },
                (None, Some(rb)) => StageCtrl::Read {
                    addr: w.addr,
                    link: rb.out,
                },
                (Some(i), Some(rb)) => StageCtrl::Fused {
                    addr: w.addr,
                    input: *i,
                    output: rb.out,
                },
                (None, None) => unreachable!("wave with no operation"),
            };
            if let Some(p) = &self.probe {
                let op = match (&w.write_from, &w.read_to) {
                    (Some(_), None) => WaveDir::Write,
                    (None, Some(_)) => WaveDir::Read,
                    _ => WaveDir::Fused,
                };
                p.emit(
                    c,
                    ProbeEvent::BankAccess {
                        stage: k,
                        addr: w.addr.index(),
                        op,
                        input: w.write_from.map(PortId::index),
                        output: w.read_to.as_ref().map(|rb| rb.out.index()),
                    },
                );
            }
        }

        // 6. Clock edge.
        for &(i, k, word) in &self.latch_loads {
            self.latches[i][k] = word;
        }
        std::mem::swap(&mut self.outreg_cur, &mut self.outreg_next);
        for o in self.outreg_next.iter_mut() {
            *o = None;
        }
        self.waves.retain(|w| ((c - w.start) as usize) + 1 < s);
        if let Some(p) = &self.probe {
            let occ = self.mgr.occupancy() as u64;
            if occ != self.last_occ {
                self.last_occ = occ;
                p.emit(
                    c,
                    ProbeEvent::Gauge {
                        gauge: GaugeKind::Occupancy,
                        index: 0,
                        value: occ,
                    },
                );
            }
            for j in 0..self.cfg.n_out {
                let depth = self.mgr.queue_len(PortId(j)) as u64;
                if depth != self.last_qdepth[j] {
                    self.last_qdepth[j] = depth;
                    p.emit(
                        c,
                        ProbeEvent::Gauge {
                            gauge: GaugeKind::QueueDepth,
                            index: j,
                            value: depth,
                        },
                    );
                }
            }
        }
        self.cycle = c + 1;
        self.wire_out = wire_out;
        &self.wire_out
    }
}

impl simkernel::Horizon for PipelinedSwitchRef {
    fn now(&self) -> Cycle {
        self.cycle
    }

    fn next_event(&self) -> Option<Cycle> {
        if self.is_quiescent() {
            None
        } else {
            Some(self.cycle)
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.cycle, "jump_to moves time forward only");
        debug_assert!(
            self.is_quiescent(),
            "the RTL model only skips quiescent spans"
        );
        for w in &mut self.wire_out {
            *w = None;
        }
        for ctrl in &mut self.last_controls {
            *ctrl = StageCtrl::Nop;
        }
        self.cycle = target;
    }
}
