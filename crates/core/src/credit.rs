//! Link-level credit-based flow control.
//!
//! The Telegraphos switches use credit-based flow control on their links
//! (§4.2 mentions the credit logic in the outgoing-link blocks; the full
//! VC-level scheme is in \[KVES95\]). The principle modeled here is the
//! link-level core of it: the upstream end of a link holds a credit
//! counter initialized to the number of buffer slots reserved for that
//! link downstream; transmitting a packet consumes one credit; the
//! downstream switch returns a credit when the packet's slot is freed.
//! With per-link reservations summing to at most the shared-buffer
//! capacity, **buffer-full drops become impossible** — the property the
//! integration tests assert.
//!
//! In the pipelined-memory switch a slot is freed at *read initiation*
//! (see `bufmgr`), so credits return earlier than in a conventional
//! shared-buffer switch — a small but real latency advantage of the
//! organization.

use simkernel::error::SimError;
use simkernel::ids::Cycle;
use std::collections::VecDeque;
use telemetry::{ProbeEvent, ProbeHandle};

/// The upstream (sender) end of one credit-flow-controlled link.
///
/// Generic over what a "packet" is — the caller enqueues opaque items and
/// pulls them out only when a credit is available.
///
/// ```
/// use switch_core::credit::CreditedInput;
///
/// let mut link: CreditedInput<&str> = CreditedInput::new(1, 0);
/// link.offer("p1");
/// link.offer("p2");
/// assert_eq!(link.poll(0), Some("p1")); // consumes the only credit
/// assert_eq!(link.poll(1), None);       // p2 waits
/// link.return_credit(2);                // downstream freed the slot
/// assert_eq!(link.poll(2), Some("p2"));
/// ```
#[derive(Debug, Clone)]
pub struct CreditedInput<T> {
    credits: u32,
    initial: u32,
    queue: VecDeque<T>,
    /// Credits that have been granted by the receiver but are still in
    /// flight on the (modeled) reverse wire: (arrival_cycle, count).
    returning: VecDeque<(Cycle, u32)>,
    credit_delay: Cycle,
    /// Times [`CreditedInput::resync`] recovered lost credits.
    resyncs: u64,
    /// Telemetry probe and the input-lane index reported with each
    /// credit event (attached by the harness; `None` in the hot path).
    probe: Option<(ProbeHandle, usize)>,
}

impl<T> CreditedInput<T> {
    /// A sender with `initial` credits and a credit-return wire delay of
    /// `credit_delay` cycles (0 = same-cycle return).
    pub fn new(initial: u32, credit_delay: Cycle) -> Self {
        CreditedInput {
            credits: initial,
            initial,
            queue: VecDeque::new(),
            returning: VecDeque::new(),
            credit_delay,
            resyncs: 0,
            probe: None,
        }
    }

    /// Attach a probe; credit grants and returns on this link are
    /// reported as [`ProbeEvent::CreditGrant`]/[`ProbeEvent::CreditReturn`]
    /// tagged with input `lane`.
    pub fn attach_probe(&mut self, probe: ProbeHandle, lane: usize) {
        self.probe = Some((probe, lane));
    }

    /// Credits currently usable.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The initial (maximum) credit allotment.
    pub fn initial_credits(&self) -> u32 {
        self.initial
    }

    /// Packets waiting for credits.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Credits granted by the receiver but still in flight on the
    /// (modeled) reverse wire.
    pub fn in_flight_credits(&self) -> u32 {
        self.returning.iter().map(|&(_, n)| n).sum()
    }

    /// Credits consumed and not yet seen coming back: by the conservation
    /// invariant `credits + in-flight + outstanding == initial`, this is
    /// what the sender believes the downstream still owes it.
    pub fn outstanding(&self) -> u32 {
        self.initial - self.credits - self.in_flight_credits()
    }

    /// Times [`CreditedInput::resync`] recovered lost credits.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Audit the credit-conservation invariant against ground truth.
    ///
    /// `actual_outstanding` is the number of packets this sender launched
    /// whose downstream slot has not yet been freed (the testbench ledger
    /// or, on real silicon, a periodic credit-sync message knows this).
    /// If the sender's own [`CreditedInput::outstanding`] exceeds it,
    /// credit returns were lost on the wire — the link bleeds bandwidth
    /// and eventually deadlocks; if it is *smaller*, credits were
    /// returned twice. Either way: [`SimError::CreditLeak`].
    pub fn audit(&self, actual_outstanding: u32, context: &str) -> Result<(), SimError> {
        let expected = self.outstanding();
        if expected == actual_outstanding {
            Ok(())
        } else {
            Err(SimError::CreditLeak {
                expected_outstanding: expected,
                actual_outstanding,
                context: context.to_string(),
            })
        }
    }

    /// Recover from lost credit returns: restore the credit counter so
    /// that exactly `actual_outstanding` credits remain outstanding
    /// (in-flight returns untouched). Returns the number of credits
    /// recovered. This is the resync a real credit protocol performs with
    /// a periodic absolute-count message instead of incremental returns.
    pub fn resync(&mut self, actual_outstanding: u32) -> u32 {
        let expected = self.outstanding();
        let lost = expected.saturating_sub(actual_outstanding);
        if lost > 0 {
            self.credits += lost;
            self.resyncs += 1;
        }
        lost
    }

    /// Enqueue a packet for transmission.
    pub fn offer(&mut self, item: T) {
        self.queue.push_back(item);
    }

    /// The receiver freed a slot at `now`; the credit becomes usable at
    /// `now + credit_delay`.
    pub fn return_credit(&mut self, now: Cycle) {
        let at = now + self.credit_delay;
        match self.returning.back_mut() {
            Some((cycle, n)) if *cycle == at => *n += 1,
            _ => self.returning.push_back((at, 1)),
        }
        if let Some((p, lane)) = &self.probe {
            p.emit(
                now,
                ProbeEvent::CreditReturn {
                    input: *lane,
                    remaining: u64::from(self.credits),
                },
            );
        }
    }

    /// Advance to `now` and, if a packet is queued and a credit is
    /// available, consume one credit and release the packet for
    /// transmission.
    pub fn poll(&mut self, now: Cycle) -> Option<T> {
        while let Some(&(at, n)) = self.returning.front() {
            if at > now {
                break;
            }
            self.credits += n;
            self.returning.pop_front();
        }
        debug_assert!(
            self.credits <= self.initial,
            "credit counter exceeded its allotment — double return"
        );
        if self.credits > 0 && !self.queue.is_empty() {
            self.credits -= 1;
            if let Some((p, lane)) = &self.probe {
                p.emit(
                    now,
                    ProbeEvent::CreditGrant {
                        input: *lane,
                        remaining: u64::from(self.credits),
                    },
                );
            }
            self.queue.pop_front()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_until_credits_exhausted() {
        let mut c: CreditedInput<u32> = CreditedInput::new(2, 0);
        c.offer(1);
        c.offer(2);
        c.offer(3);
        assert_eq!(c.poll(0), Some(1));
        assert_eq!(c.poll(1), Some(2));
        assert_eq!(c.poll(2), None, "out of credits");
        assert_eq!(c.backlog(), 1);
    }

    #[test]
    fn credit_return_resumes_flow() {
        let mut c: CreditedInput<u32> = CreditedInput::new(1, 0);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.poll(0), Some(1));
        assert_eq!(c.poll(1), None);
        c.return_credit(1);
        assert_eq!(c.poll(1), Some(2));
    }

    #[test]
    fn credit_return_delay_respected() {
        let mut c: CreditedInput<u32> = CreditedInput::new(1, 3);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.poll(0), Some(1));
        c.return_credit(0); // usable at 3
        assert_eq!(c.poll(1), None);
        assert_eq!(c.poll(2), None);
        assert_eq!(c.poll(3), Some(2));
    }

    #[test]
    fn batched_returns_coalesce() {
        let mut c: CreditedInput<u32> = CreditedInput::new(3, 2);
        for i in 0..3 {
            c.offer(i);
            assert!(c.poll(0).is_some());
        }
        c.return_credit(5);
        c.return_credit(5);
        c.offer(10);
        c.offer(11);
        assert_eq!(c.poll(6), None);
        assert_eq!(c.poll(7), Some(10));
        assert_eq!(c.poll(7), Some(11));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double return")]
    fn over_return_detected() {
        let mut c: CreditedInput<u32> = CreditedInput::new(1, 0);
        c.return_credit(0);
        let _ = c.poll(0);
    }

    #[test]
    fn outstanding_tracks_consumption_and_returns() {
        let mut c: CreditedInput<u32> = CreditedInput::new(3, 2);
        assert_eq!(c.outstanding(), 0);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.poll(0), Some(1));
        assert_eq!(c.poll(0), Some(2));
        assert_eq!(c.outstanding(), 2);
        c.return_credit(1); // in flight until cycle 3
        assert_eq!(c.in_flight_credits(), 1);
        assert_eq!(c.outstanding(), 1, "in-flight return is not outstanding");
        assert_eq!(c.poll(3), None); // matures the return
        assert_eq!(c.outstanding(), 1);
        assert_eq!(c.credits(), 2);
    }

    #[test]
    fn audit_detects_lost_return_and_resync_recovers() {
        let mut c: CreditedInput<u32> = CreditedInput::new(2, 0);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.poll(0), Some(1));
        assert_eq!(c.poll(0), Some(2));
        // Downstream freed both slots but one return was lost on the
        // wire; ground truth says 0 outstanding, the sender counts 2... 1.
        c.return_credit(0);
        let _ = c.poll(1); // no queue: matures the return only
        assert_eq!(c.outstanding(), 1);
        let err = c.audit(0, "input 0").unwrap_err();
        assert!(matches!(
            err,
            SimError::CreditLeak {
                expected_outstanding: 1,
                actual_outstanding: 0,
                ..
            }
        ));
        assert_eq!(c.resync(0), 1, "one credit recovered");
        assert_eq!(c.resyncs(), 1);
        assert!(c.audit(0, "input 0").is_ok());
        // Flow resumes at full allotment.
        c.offer(3);
        assert_eq!(c.poll(2), Some(3));
    }

    #[test]
    fn audit_passes_when_counts_agree() {
        let mut c: CreditedInput<u32> = CreditedInput::new(2, 0);
        c.offer(9);
        assert_eq!(c.poll(0), Some(9));
        assert!(c.audit(1, "link").is_ok());
        assert_eq!(c.resync(1), 0, "nothing lost, nothing recovered");
        assert_eq!(c.resyncs(), 0);
    }

    #[test]
    fn no_packet_no_credit_consumed() {
        let mut c: CreditedInput<u32> = CreditedInput::new(2, 0);
        assert_eq!(c.poll(0), None);
        assert_eq!(c.credits(), 2);
    }
}
