//! Link-level credit-based flow control.
//!
//! The Telegraphos switches use credit-based flow control on their links
//! (§4.2 mentions the credit logic in the outgoing-link blocks; the full
//! VC-level scheme is in \[KVES95\]). The principle modeled here is the
//! link-level core of it: the upstream end of a link holds a credit
//! counter initialized to the number of buffer slots reserved for that
//! link downstream; transmitting a packet consumes one credit; the
//! downstream switch returns a credit when the packet's slot is freed.
//! With per-link reservations summing to at most the shared-buffer
//! capacity, **buffer-full drops become impossible** — the property the
//! integration tests assert.
//!
//! In the pipelined-memory switch a slot is freed at *read initiation*
//! (see `bufmgr`), so credits return earlier than in a conventional
//! shared-buffer switch — a small but real latency advantage of the
//! organization.

use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// The upstream (sender) end of one credit-flow-controlled link.
///
/// Generic over what a "packet" is — the caller enqueues opaque items and
/// pulls them out only when a credit is available.
///
/// ```
/// use switch_core::credit::CreditedInput;
///
/// let mut link: CreditedInput<&str> = CreditedInput::new(1, 0);
/// link.offer("p1");
/// link.offer("p2");
/// assert_eq!(link.poll(0), Some("p1")); // consumes the only credit
/// assert_eq!(link.poll(1), None);       // p2 waits
/// link.return_credit(2);                // downstream freed the slot
/// assert_eq!(link.poll(2), Some("p2"));
/// ```
#[derive(Debug, Clone)]
pub struct CreditedInput<T> {
    credits: u32,
    initial: u32,
    queue: VecDeque<T>,
    /// Credits that have been granted by the receiver but are still in
    /// flight on the (modeled) reverse wire: (arrival_cycle, count).
    returning: VecDeque<(Cycle, u32)>,
    credit_delay: Cycle,
}

impl<T> CreditedInput<T> {
    /// A sender with `initial` credits and a credit-return wire delay of
    /// `credit_delay` cycles (0 = same-cycle return).
    pub fn new(initial: u32, credit_delay: Cycle) -> Self {
        CreditedInput {
            credits: initial,
            initial,
            queue: VecDeque::new(),
            returning: VecDeque::new(),
            credit_delay,
        }
    }

    /// Credits currently usable.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The initial (maximum) credit allotment.
    pub fn initial_credits(&self) -> u32 {
        self.initial
    }

    /// Packets waiting for credits.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue a packet for transmission.
    pub fn offer(&mut self, item: T) {
        self.queue.push_back(item);
    }

    /// The receiver freed a slot at `now`; the credit becomes usable at
    /// `now + credit_delay`.
    pub fn return_credit(&mut self, now: Cycle) {
        let at = now + self.credit_delay;
        match self.returning.back_mut() {
            Some((cycle, n)) if *cycle == at => *n += 1,
            _ => self.returning.push_back((at, 1)),
        }
    }

    /// Advance to `now` and, if a packet is queued and a credit is
    /// available, consume one credit and release the packet for
    /// transmission.
    pub fn poll(&mut self, now: Cycle) -> Option<T> {
        while let Some(&(at, n)) = self.returning.front() {
            if at > now {
                break;
            }
            self.credits += n;
            self.returning.pop_front();
        }
        debug_assert!(
            self.credits <= self.initial,
            "credit counter exceeded its allotment — double return"
        );
        if self.credits > 0 && !self.queue.is_empty() {
            self.credits -= 1;
            self.queue.pop_front()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_until_credits_exhausted() {
        let mut c: CreditedInput<u32> = CreditedInput::new(2, 0);
        c.offer(1);
        c.offer(2);
        c.offer(3);
        assert_eq!(c.poll(0), Some(1));
        assert_eq!(c.poll(1), Some(2));
        assert_eq!(c.poll(2), None, "out of credits");
        assert_eq!(c.backlog(), 1);
    }

    #[test]
    fn credit_return_resumes_flow() {
        let mut c: CreditedInput<u32> = CreditedInput::new(1, 0);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.poll(0), Some(1));
        assert_eq!(c.poll(1), None);
        c.return_credit(1);
        assert_eq!(c.poll(1), Some(2));
    }

    #[test]
    fn credit_return_delay_respected() {
        let mut c: CreditedInput<u32> = CreditedInput::new(1, 3);
        c.offer(1);
        c.offer(2);
        assert_eq!(c.poll(0), Some(1));
        c.return_credit(0); // usable at 3
        assert_eq!(c.poll(1), None);
        assert_eq!(c.poll(2), None);
        assert_eq!(c.poll(3), Some(2));
    }

    #[test]
    fn batched_returns_coalesce() {
        let mut c: CreditedInput<u32> = CreditedInput::new(3, 2);
        for i in 0..3 {
            c.offer(i);
            assert!(c.poll(0).is_some());
        }
        c.return_credit(5);
        c.return_credit(5);
        c.offer(10);
        c.offer(11);
        assert_eq!(c.poll(6), None);
        assert_eq!(c.poll(7), Some(10));
        assert_eq!(c.poll(7), Some(11));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double return")]
    fn over_return_detected() {
        let mut c: CreditedInput<u32> = CreditedInput::new(1, 0);
        c.return_credit(0);
        let _ = c.poll(0);
    }

    #[test]
    fn no_packet_no_credit_consumed() {
        let mut c: CreditedInput<u32> = CreditedInput::new(2, 0);
        assert_eq!(c.poll(0), None);
        assert_eq!(c.credits(), 2);
    }
}
