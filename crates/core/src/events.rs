//! Integrity verdicts and aggregate counters maintained by the switch
//! models.
//!
//! Per-cycle observations stream through the `telemetry` probe API
//! (`telemetry::ProbeEvent`) — there is no separate switch-level event
//! enum; this module keeps only what the models themselves store.

use std::fmt;

/// Why the integrity machinery condemned a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityReason {
    /// The per-slot checksum computed at ingress no longer matches the
    /// buffered words (storage upset or suppressed write).
    ChecksumMismatch,
    /// The input link idled mid-packet; the tail never arrived.
    TruncatedPacket,
    /// The header addressed no valid output (corrupt on the wire).
    BadHeader,
    /// A payload word deviated from the synthetic payload rule.
    PayloadMismatch,
}

impl fmt::Display for IntegrityReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntegrityReason::ChecksumMismatch => "checksum mismatch",
            IntegrityReason::TruncatedPacket => "truncated packet",
            IntegrityReason::BadHeader => "bad header",
            IntegrityReason::PayloadMismatch => "payload mismatch",
        })
    }
}

/// Aggregate statistics maintained by the switch models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Packets whose header was accepted.
    pub arrived: u64,
    /// Packets fully transmitted.
    pub departed: u64,
    /// Packets dropped for lack of a buffer slot.
    pub dropped_buffer_full: u64,
    /// Packets lost to latch overrun (must stay 0 under the shipped
    /// arbiter policies).
    pub latch_overruns: u64,
    /// Read waves that were fused with a write wave (same-cycle
    /// cut-through).
    pub fused_reads: u64,
    /// Cycles in which no wave was initiated though requests existed
    /// (never happens with a work-conserving arbiter; diagnostic).
    pub idle_with_work: u64,
    /// Packets detected as corrupt before transmission and dropped
    /// (checksum scrub, ingress payload check, truncation, bad header).
    pub corrupt_drops: u64,
    /// Packets delivered whose egress payload check failed — detected,
    /// but too late to drop (already on the wire).
    pub corrupt_delivered: u64,
    /// Bank writes suppressed by an injected stuck-stage-control fault
    /// (each one leaves one stale word in a live slot).
    pub writes_suppressed: u64,
    /// Cycles in which both a read wave and a write wave requested
    /// initiation — the §3.2 arbitration collision the single initiation
    /// port forces the arbiter to resolve (reads win under the shipped
    /// policy). Conformance-fuzz coverage requires this to be exercised.
    pub rw_collisions: u64,
    /// Single-bit bank upsets corrected in place by ECC (recovery armed).
    pub ecc_corrected: u64,
    /// Words found corrupted beyond single-error correction.
    pub ecc_uncorrectable: u64,
    /// Banks hot-swapped for a spare column after repeated ECC failures.
    pub bank_failovers: u64,
    /// Packets shed at admission during a recovery window (also counted
    /// in `dropped_buffer_full`, so conservation is unchanged; this
    /// sub-count is what the oracle excuses as declared in-window loss).
    pub recovery_shed: u64,
    /// Packets rejected at admission by a non-static buffer-sharing
    /// policy (Dynamic Thresholds threshold, Occamy fair-share denial,
    /// BShare delay bound, push-out with no evictable victim). Disjoint
    /// from `dropped_buffer_full`, which stays a static-pool-only count.
    pub policy_drops: u64,
    /// Already-buffered packets evicted by a buffer-sharing policy to
    /// admit a new arrival (push-out, Occamy preemptive drop).
    pub policy_preempts: u64,
}

impl SwitchCounters {
    /// Packets currently inside the switch (accepted, not yet departed).
    pub fn in_flight(&self) -> u64 {
        self.arrived
            - self.departed
            - self.dropped_buffer_full
            - self.latch_overruns
            - self.corrupt_drops
            - self.policy_drops
            - self.policy_preempts
    }

    /// Packets condemned by the integrity machinery (dropped or flagged
    /// at egress) — the "detected" numerator of fault-campaign coverage.
    pub fn integrity_detections(&self) -> u64 {
        self.corrupt_drops + self.corrupt_delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_accounting() {
        let c = SwitchCounters {
            arrived: 10,
            departed: 6,
            dropped_buffer_full: 1,
            latch_overruns: 0,
            fused_reads: 3,
            idle_with_work: 0,
            corrupt_drops: 1,
            corrupt_delivered: 1,
            writes_suppressed: 0,
            rw_collisions: 0,
            ..Default::default()
        };
        // corrupt_delivered packets also count as departed; only the
        // pre-transmission drops leave the in-flight population.
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.integrity_detections(), 2);
    }

    #[test]
    fn integrity_display_forms() {
        assert_eq!(
            IntegrityReason::ChecksumMismatch.to_string(),
            "checksum mismatch"
        );
        assert_eq!(
            IntegrityReason::TruncatedPacket.to_string(),
            "truncated packet"
        );
    }
}
