//! Structured events emitted by the switch models.

use simkernel::ids::{Addr, Cycle, PortId};
use std::fmt;

/// Everything observable about the switch's operation, for traces, the
//  fig. 5 control-signal table, and test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchEvent {
    /// A packet header appeared on an input link.
    HeaderArrived {
        /// Input link.
        input: PortId,
        /// Packet id decoded from the header.
        id: u64,
        /// Destination decoded from the header.
        dst: PortId,
    },
    /// A write wave was initiated (stage-0 write this cycle).
    WriteInitiated {
        /// Input link whose latches feed the wave.
        input: PortId,
        /// Slot being written.
        addr: Addr,
    },
    /// A read wave was initiated (stage-0 read this cycle).
    ReadInitiated {
        /// Output link the packet will leave on.
        output: PortId,
        /// Slot being read.
        addr: Addr,
        /// True if this read was fused onto the write wave of the same
        /// packet in the same cycle (bus-sampled cut-through).
        fused: bool,
    },
    /// A packet finished transmission on an output link (tail word sent).
    Departed {
        /// Output link.
        output: PortId,
        /// Packet id.
        id: u64,
        /// Cycle the packet's header arrived (for latency).
        birth: Cycle,
    },
    /// A packet was dropped because no buffer slot was free at header
    /// arrival.
    DroppedBufferFull {
        /// Input link.
        input: PortId,
        /// Packet id.
        id: u64,
    },
    /// A packet was lost because its write wave could not be initiated
    /// before its input latches were overwritten. The arbiter is designed
    /// so this never happens (tests assert the count stays zero); the
    /// event exists so that *if* a policy change breaks the guarantee, it
    /// breaks loudly.
    LatchOverrun {
        /// Input link.
        input: PortId,
        /// Packet id.
        id: u64,
    },
    /// A packet was detected as corrupt *before transmission* and dropped
    /// (slot freed). This is the detect-and-survive path: an ECC-style
    /// scrub at read initiation, an ingress payload check, or hardened
    /// framing caught the damage while the packet was still droppable.
    CorruptDropped {
        /// Packet id (as decoded at ingress — possibly itself corrupt).
        id: u64,
        /// What the integrity machinery caught.
        reason: IntegrityReason,
    },
    /// A packet already streaming on an output link failed the egress
    /// payload check: the corruption is detected and counted, but the
    /// words are on the wire (a link CRC would mark the frame bad).
    CorruptDelivered {
        /// Output link.
        output: PortId,
        /// Packet id decoded from the delivered header.
        id: u64,
    },
}

/// Why the integrity machinery condemned a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityReason {
    /// The per-slot checksum computed at ingress no longer matches the
    /// buffered words (storage upset or suppressed write).
    ChecksumMismatch,
    /// The input link idled mid-packet; the tail never arrived.
    TruncatedPacket,
    /// The header addressed no valid output (corrupt on the wire).
    BadHeader,
    /// A payload word deviated from the synthetic payload rule.
    PayloadMismatch,
}

impl fmt::Display for IntegrityReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntegrityReason::ChecksumMismatch => "checksum mismatch",
            IntegrityReason::TruncatedPacket => "truncated packet",
            IntegrityReason::BadHeader => "bad header",
            IntegrityReason::PayloadMismatch => "payload mismatch",
        })
    }
}

impl fmt::Display for SwitchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchEvent::HeaderArrived { input, id, dst } => {
                write!(f, "header  in={input} id={id} dst={dst}")
            }
            SwitchEvent::WriteInitiated { input, addr } => {
                write!(f, "write   in={input} {addr}")
            }
            SwitchEvent::ReadInitiated {
                output,
                addr,
                fused,
            } => {
                write!(
                    f,
                    "read    out={output} {addr}{}",
                    if *fused { " (fused cut-through)" } else { "" }
                )
            }
            SwitchEvent::Departed { output, id, birth } => {
                write!(f, "depart  out={output} id={id} born={birth}")
            }
            SwitchEvent::DroppedBufferFull { input, id } => {
                write!(f, "DROP    in={input} id={id} (buffer full)")
            }
            SwitchEvent::LatchOverrun { input, id } => {
                write!(f, "OVERRUN in={input} id={id} (latch deadline missed)")
            }
            SwitchEvent::CorruptDropped { id, reason } => {
                write!(f, "CORRUPT id={id} dropped ({reason})")
            }
            SwitchEvent::CorruptDelivered { output, id } => {
                write!(
                    f,
                    "CORRUPT out={output} id={id} delivered (egress check failed)"
                )
            }
        }
    }
}

/// Aggregate statistics maintained by the switch models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Packets whose header was accepted.
    pub arrived: u64,
    /// Packets fully transmitted.
    pub departed: u64,
    /// Packets dropped for lack of a buffer slot.
    pub dropped_buffer_full: u64,
    /// Packets lost to latch overrun (must stay 0 under the shipped
    /// arbiter policies).
    pub latch_overruns: u64,
    /// Read waves that were fused with a write wave (same-cycle
    /// cut-through).
    pub fused_reads: u64,
    /// Cycles in which no wave was initiated though requests existed
    /// (never happens with a work-conserving arbiter; diagnostic).
    pub idle_with_work: u64,
    /// Packets detected as corrupt before transmission and dropped
    /// (checksum scrub, ingress payload check, truncation, bad header).
    pub corrupt_drops: u64,
    /// Packets delivered whose egress payload check failed — detected,
    /// but too late to drop (already on the wire).
    pub corrupt_delivered: u64,
    /// Bank writes suppressed by an injected stuck-stage-control fault
    /// (each one leaves one stale word in a live slot).
    pub writes_suppressed: u64,
    /// Cycles in which both a read wave and a write wave requested
    /// initiation — the §3.2 arbitration collision the single initiation
    /// port forces the arbiter to resolve (reads win under the shipped
    /// policy). Conformance-fuzz coverage requires this to be exercised.
    pub rw_collisions: u64,
}

impl SwitchCounters {
    /// Packets currently inside the switch (accepted, not yet departed).
    pub fn in_flight(&self) -> u64 {
        self.arrived
            - self.departed
            - self.dropped_buffer_full
            - self.latch_overruns
            - self.corrupt_drops
    }

    /// Packets condemned by the integrity machinery (dropped or flagged
    /// at egress) — the "detected" numerator of fault-campaign coverage.
    pub fn integrity_detections(&self) -> u64 {
        self.corrupt_drops + self.corrupt_delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::ids::{Addr, PortId};

    #[test]
    fn display_forms() {
        let e = SwitchEvent::ReadInitiated {
            output: PortId(2),
            addr: Addr(7),
            fused: true,
        };
        assert!(e.to_string().contains("fused"));
        let d = SwitchEvent::Departed {
            output: PortId(1),
            id: 9,
            birth: 100,
        };
        assert!(d.to_string().contains("id=9"));
    }

    #[test]
    fn in_flight_accounting() {
        let c = SwitchCounters {
            arrived: 10,
            departed: 6,
            dropped_buffer_full: 1,
            latch_overruns: 0,
            fused_reads: 3,
            idle_with_work: 0,
            corrupt_drops: 1,
            corrupt_delivered: 1,
            writes_suppressed: 0,
            rw_collisions: 0,
        };
        // corrupt_delivered packets also count as departed; only the
        // pre-transmission drops leave the in-flight population.
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.integrity_detections(), 2);
    }

    #[test]
    fn integrity_display_forms() {
        let d = SwitchEvent::CorruptDropped {
            id: 4,
            reason: IntegrityReason::TruncatedPacket,
        };
        assert!(d.to_string().contains("truncated"));
        let v = SwitchEvent::CorruptDelivered {
            output: PortId(3),
            id: 8,
        };
        assert!(v.to_string().contains("egress"));
        assert_eq!(
            IntegrityReason::ChecksumMismatch.to_string(),
            "checksum mismatch"
        );
    }
}
