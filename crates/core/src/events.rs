//! Structured events emitted by the switch models.

use simkernel::ids::{Addr, Cycle, PortId};
use std::fmt;

/// Everything observable about the switch's operation, for traces, the
//  fig. 5 control-signal table, and test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchEvent {
    /// A packet header appeared on an input link.
    HeaderArrived {
        /// Input link.
        input: PortId,
        /// Packet id decoded from the header.
        id: u64,
        /// Destination decoded from the header.
        dst: PortId,
    },
    /// A write wave was initiated (stage-0 write this cycle).
    WriteInitiated {
        /// Input link whose latches feed the wave.
        input: PortId,
        /// Slot being written.
        addr: Addr,
    },
    /// A read wave was initiated (stage-0 read this cycle).
    ReadInitiated {
        /// Output link the packet will leave on.
        output: PortId,
        /// Slot being read.
        addr: Addr,
        /// True if this read was fused onto the write wave of the same
        /// packet in the same cycle (bus-sampled cut-through).
        fused: bool,
    },
    /// A packet finished transmission on an output link (tail word sent).
    Departed {
        /// Output link.
        output: PortId,
        /// Packet id.
        id: u64,
        /// Cycle the packet's header arrived (for latency).
        birth: Cycle,
    },
    /// A packet was dropped because no buffer slot was free at header
    /// arrival.
    DroppedBufferFull {
        /// Input link.
        input: PortId,
        /// Packet id.
        id: u64,
    },
    /// A packet was lost because its write wave could not be initiated
    /// before its input latches were overwritten. The arbiter is designed
    /// so this never happens (tests assert the count stays zero); the
    /// event exists so that *if* a policy change breaks the guarantee, it
    /// breaks loudly.
    LatchOverrun {
        /// Input link.
        input: PortId,
        /// Packet id.
        id: u64,
    },
}

impl fmt::Display for SwitchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchEvent::HeaderArrived { input, id, dst } => {
                write!(f, "header  in={input} id={id} dst={dst}")
            }
            SwitchEvent::WriteInitiated { input, addr } => {
                write!(f, "write   in={input} {addr}")
            }
            SwitchEvent::ReadInitiated {
                output,
                addr,
                fused,
            } => {
                write!(
                    f,
                    "read    out={output} {addr}{}",
                    if *fused { " (fused cut-through)" } else { "" }
                )
            }
            SwitchEvent::Departed { output, id, birth } => {
                write!(f, "depart  out={output} id={id} born={birth}")
            }
            SwitchEvent::DroppedBufferFull { input, id } => {
                write!(f, "DROP    in={input} id={id} (buffer full)")
            }
            SwitchEvent::LatchOverrun { input, id } => {
                write!(f, "OVERRUN in={input} id={id} (latch deadline missed)")
            }
        }
    }
}

/// Aggregate statistics maintained by the switch models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Packets whose header was accepted.
    pub arrived: u64,
    /// Packets fully transmitted.
    pub departed: u64,
    /// Packets dropped for lack of a buffer slot.
    pub dropped_buffer_full: u64,
    /// Packets lost to latch overrun (must stay 0 under the shipped
    /// arbiter policies).
    pub latch_overruns: u64,
    /// Read waves that were fused with a write wave (same-cycle
    /// cut-through).
    pub fused_reads: u64,
    /// Cycles in which no wave was initiated though requests existed
    /// (never happens with a work-conserving arbiter; diagnostic).
    pub idle_with_work: u64,
}

impl SwitchCounters {
    /// Packets currently inside the switch (accepted, not yet departed).
    pub fn in_flight(&self) -> u64 {
        self.arrived - self.departed - self.dropped_buffer_full - self.latch_overruns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::ids::{Addr, PortId};

    #[test]
    fn display_forms() {
        let e = SwitchEvent::ReadInitiated {
            output: PortId(2),
            addr: Addr(7),
            fused: true,
        };
        assert!(e.to_string().contains("fused"));
        let d = SwitchEvent::Departed {
            output: PortId(1),
            id: 9,
            birth: 100,
        };
        assert!(d.to_string().contains("id=9"));
    }

    #[test]
    fn in_flight_accounting() {
        let c = SwitchCounters {
            arrived: 10,
            departed: 6,
            dropped_buffer_full: 1,
            latch_overruns: 0,
            fused_reads: 3,
            idle_with_work: 0,
        };
        assert_eq!(c.in_flight(), 3);
    }
}
