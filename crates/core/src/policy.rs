//! Buffer-sharing (admission/preemption) policies for the shared buffer.
//!
//! The paper keeps buffer management orthogonal to the pipelined memory
//! (§3.3), which makes the admission decision a clean seam: *whether* an
//! arriving packet gets a slot is independent of *how* words travel
//! through the banks. This module hosts that seam as the [`SharingPolicy`]
//! trait plus the concrete policies of the shared-buffer lineage:
//!
//! * **Static pool** — today's behavior: admit iff a free slot exists.
//!   The zero-cost default; models keep their original admission code
//!   behind an [`PolicyEngine::is_static`] guard so the static path is
//!   bit-exact with (and as fast as) the pre-policy code.
//! * **Dynamic Thresholds** (Choudhury–Hahne) — a queue may only grow
//!   while its length is below `α ·` (free slots). The hot queue of an
//!   incast self-limits, leaving headroom for victim flows.
//! * **Push-out** — when the buffer is full, the arriving packet evicts
//!   the rearmost evictable packet of the longest queue.
//! * **Occamy-style preemptive drop** — a high watermark (⅞ capacity)
//!   below which everything is admitted; between watermark and full only
//!   arrivals whose queue is under its fair share (`qlen · n_out ≤ occ`)
//!   are admitted; at full, under-fair-share arrivals preempt from the
//!   longest queue.
//! * **BShare-style delay threshold** — admission keyed to the measured
//!   per-output *queueing delay* (birth-to-read latency of the packet
//!   most recently read for that output) instead of queue length.
//!
//! All decisions are deterministic integer math over the same
//! [`PolicyView`], so the word-level RTL model and the cell-level
//! behavioral model make identical decisions cycle by cycle — the
//! conformance oracle holds them to that.

use simkernel::ids::Cycle;

/// Everything a policy may look at when deciding one admission.
///
/// Models materialize this from their own bookkeeping (free-list length,
/// live queue lengths). `qlens` must count only *live* queued packets —
/// stale generation-tagged entries excluded — so all models agree.
#[derive(Debug, Clone, Copy)]
pub struct PolicyView<'a> {
    /// Slots currently allocated.
    pub occupancy: usize,
    /// Total slots (degraded-mode capacity when recovery shrank it).
    pub capacity: usize,
    /// Number of output links.
    pub n_out: usize,
    /// Primary destination output of the arriving packet.
    pub dst: usize,
    /// Live queue length per output, indexed by output link.
    pub qlens: &'a [usize],
}

/// The outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Take a free slot.
    Accept,
    /// Refuse the arrival (a declared policy drop — or, under the static
    /// pool, the classic buffer-full drop).
    Reject,
    /// Admit by evicting the rearmost *evictable* packet of output queue
    /// `victim`. The model applies its own evictability rule (a packet
    /// whose write has fully retired and which no read wave has begun
    /// transmitting); if the victim queue holds no evictable packet, the
    /// model must treat this as [`AdmitDecision::Reject`].
    Preempt {
        /// Output queue to evict from.
        victim: usize,
    },
}

/// A pluggable buffer-sharing policy: the admission decision plus the
/// observation hooks that feed it.
///
/// Hooks default to no-ops so stateless policies stay zero-cost; only
/// [`BShare`] carries state (the per-output delay signal fed by
/// [`SharingPolicy::on_read`]).
pub trait SharingPolicy {
    /// Decide whether the arriving packet (bound for `view.dst`) may
    /// take a slot, and at whose expense.
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision;

    /// Choose an eviction victim: the longest queue, ties to the lowest
    /// output index. Policies needing a different victim rule override.
    fn preempt(&self, view: &PolicyView<'_>) -> Option<usize> {
        longest_queue(view.qlens)
    }

    /// Observe a read initiation for `output` whose packet waited
    /// `delay` cycles from header arrival to read start (the BShare
    /// queueing-delay signal).
    fn on_read(&mut self, output: usize, delay: Cycle) {
        let _ = (output, delay);
    }

    /// Observe a slot being freed (occupancy after the free).
    fn on_free(&mut self, occupancy: usize) {
        let _ = occupancy;
    }
}

/// The longest non-empty queue, ties broken toward the lowest output
/// index. `None` when every queue is empty (nothing to evict).
pub fn longest_queue(qlens: &[usize]) -> Option<usize> {
    let (mut best, mut best_len) = (None, 0usize);
    for (j, &len) in qlens.iter().enumerate() {
        if len > best_len {
            best = Some(j);
            best_len = len;
        }
    }
    best
}

/// Static pool: admit iff a free slot exists (the pre-policy behavior).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPool;

impl SharingPolicy for StaticPool {
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision {
        if view.occupancy < view.capacity {
            AdmitDecision::Accept
        } else {
            AdmitDecision::Reject
        }
    }
}

/// Dynamic Thresholds: admit iff `qlen(dst) < α · free`, with
/// `α = alpha_num / alpha_den` in exact integer arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct DynamicThresholds {
    /// Numerator of α.
    pub alpha_num: u64,
    /// Denominator of α.
    pub alpha_den: u64,
}

impl Default for DynamicThresholds {
    fn default() -> Self {
        DynamicThresholds {
            alpha_num: 1,
            alpha_den: 1,
        }
    }
}

impl SharingPolicy for DynamicThresholds {
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision {
        if view.occupancy >= view.capacity {
            return AdmitDecision::Reject;
        }
        let free = (view.capacity - view.occupancy) as u64;
        let qlen = view.qlens[view.dst] as u64;
        if qlen * self.alpha_den < self.alpha_num * free {
            AdmitDecision::Accept
        } else {
            AdmitDecision::Reject
        }
    }
}

/// Push-out: admit freely while slots remain; at full, evict from the
/// longest queue to make room.
#[derive(Debug, Clone, Copy, Default)]
pub struct PushOut;

impl SharingPolicy for PushOut {
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision {
        if view.occupancy < view.capacity {
            AdmitDecision::Accept
        } else {
            match self.preempt(view) {
                Some(victim) => AdmitDecision::Preempt { victim },
                None => AdmitDecision::Reject,
            }
        }
    }
}

/// Occamy-style preemptive drop: watermark at ⅞ capacity, fair-share
/// admission above it, preemption at full for under-share arrivals.
#[derive(Debug, Clone, Copy, Default)]
pub struct Occamy;

impl Occamy {
    /// The high watermark: capacity minus a reserve of `max(1, cap/8)`.
    pub fn watermark(capacity: usize) -> usize {
        capacity - (capacity / 8).max(1)
    }
}

impl SharingPolicy for Occamy {
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision {
        let hi = Self::watermark(view.capacity);
        if view.occupancy < hi {
            return AdmitDecision::Accept;
        }
        // At or above the watermark: only under-fair-share queues grow.
        let under_share = view.qlens[view.dst] * view.n_out <= view.occupancy;
        if view.occupancy < view.capacity {
            if under_share {
                AdmitDecision::Accept
            } else {
                AdmitDecision::Reject
            }
        } else if under_share {
            match self.preempt(view) {
                Some(victim) => AdmitDecision::Preempt { victim },
                None => AdmitDecision::Reject,
            }
        } else {
            AdmitDecision::Reject
        }
    }
}

/// BShare-style delay threshold: admit while the destination's measured
/// queueing delay (birth-to-read latency of its most recently read
/// packet) stays within `delay_bound`; an empty queue always admits.
#[derive(Debug, Clone)]
pub struct BShare {
    /// Maximum tolerated birth-to-read delay, in cycles.
    pub delay_bound: Cycle,
    /// Last observed birth-to-read delay per output.
    last_delay: Vec<Cycle>,
}

impl BShare {
    /// A BShare policy for `n_out` outputs with the given delay bound.
    pub fn new(delay_bound: Cycle, n_out: usize) -> Self {
        BShare {
            delay_bound,
            last_delay: vec![0; n_out],
        }
    }

    /// The current delay signal for one output.
    pub fn last_delay(&self, output: usize) -> Cycle {
        self.last_delay[output]
    }
}

impl SharingPolicy for BShare {
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision {
        if view.occupancy >= view.capacity {
            return AdmitDecision::Reject;
        }
        if view.qlens[view.dst] == 0 || self.last_delay[view.dst] <= self.delay_bound {
            AdmitDecision::Accept
        } else {
            AdmitDecision::Reject
        }
    }

    fn on_read(&mut self, output: usize, delay: Cycle) {
        self.last_delay[output] = delay;
    }
}

/// Configuration-level selector for a sharing policy. `Copy`, cheap to
/// embed in every switch config; [`PolicyKind::engine`] builds the
/// stateful [`PolicyEngine`] a model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Static pool (the pre-policy behavior; the only policy whose
    /// admission path is exercised in the dense fast paths).
    #[default]
    Static,
    /// Dynamic Thresholds with `α = alpha_num / alpha_den`.
    DynamicThresholds {
        /// Numerator of α.
        alpha_num: u32,
        /// Denominator of α.
        alpha_den: u32,
    },
    /// Push-out at full buffer.
    PushOut,
    /// Occamy-style watermark + fair share + preemptive drop.
    Occamy,
    /// BShare-style queueing-delay threshold (bound = 2 packet times,
    /// i.e. `2 · stages` cycles, derived at engine construction).
    BShare,
}

impl PolicyKind {
    /// Dynamic Thresholds with the default α = 1.
    pub fn dynamic_thresholds() -> Self {
        PolicyKind::DynamicThresholds {
            alpha_num: 1,
            alpha_den: 1,
        }
    }

    /// The five policies with default parameters, in campaign order.
    pub fn all_default() -> [PolicyKind; 5] {
        [
            PolicyKind::Static,
            PolicyKind::dynamic_thresholds(),
            PolicyKind::PushOut,
            PolicyKind::Occamy,
            PolicyKind::BShare,
        ]
    }

    /// True for the zero-cost static pool.
    #[inline]
    pub fn is_static(self) -> bool {
        matches!(self, PolicyKind::Static)
    }

    /// Short stable token, also accepted by [`PolicyKind::parse`]
    /// (reproducers and the `--policy` CLI filter use it).
    pub fn token(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::DynamicThresholds { .. } => "dt",
            PolicyKind::PushOut => "pushout",
            PolicyKind::Occamy => "occamy",
            PolicyKind::BShare => "bshare",
        }
    }

    /// Human-facing label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::DynamicThresholds { .. } => "dyn-thresh",
            PolicyKind::PushOut => "push-out",
            PolicyKind::Occamy => "occamy",
            PolicyKind::BShare => "bshare",
        }
    }

    /// Parse a token (as produced by [`PolicyKind::token`]); parameters
    /// take their defaults. `None` for unknown tokens.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "static" => Some(PolicyKind::Static),
            "dt" | "dyn-thresh" | "dynamic" => Some(PolicyKind::dynamic_thresholds()),
            "pushout" | "push-out" => Some(PolicyKind::PushOut),
            "occamy" => Some(PolicyKind::Occamy),
            "bshare" => Some(PolicyKind::BShare),
            _ => None,
        }
    }

    /// Build the runnable engine for a switch with `n_out` outputs and
    /// `stages` words per packet.
    pub fn engine(self, n_out: usize, stages: usize) -> PolicyEngine {
        match self {
            PolicyKind::Static => PolicyEngine::Static(StaticPool),
            PolicyKind::DynamicThresholds {
                alpha_num,
                alpha_den,
            } => {
                assert!(alpha_den > 0, "alpha denominator must be positive");
                PolicyEngine::Dt(DynamicThresholds {
                    alpha_num: alpha_num as u64,
                    alpha_den: alpha_den as u64,
                })
            }
            PolicyKind::PushOut => PolicyEngine::PushOut(PushOut),
            PolicyKind::Occamy => PolicyEngine::Occamy(Occamy),
            PolicyKind::BShare => PolicyEngine::BShare(BShare::new(2 * stages as Cycle, n_out)),
        }
    }
}

/// Statically-dispatched bundle of the concrete policies — what a model
/// embeds. No allocation on the static path, no dynamic dispatch ever.
#[derive(Debug, Clone)]
pub enum PolicyEngine {
    /// Static pool.
    Static(StaticPool),
    /// Dynamic Thresholds.
    Dt(DynamicThresholds),
    /// Push-out.
    PushOut(PushOut),
    /// Occamy preemptive drop.
    Occamy(Occamy),
    /// BShare delay threshold.
    BShare(BShare),
}

impl PolicyEngine {
    /// True for the static pool — models guard their original (bit-exact,
    /// branch-predictable) admission code with this.
    #[inline]
    pub fn is_static(&self) -> bool {
        matches!(self, PolicyEngine::Static(_))
    }

    /// The config-level kind this engine runs.
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicyEngine::Static(_) => PolicyKind::Static,
            PolicyEngine::Dt(p) => PolicyKind::DynamicThresholds {
                alpha_num: p.alpha_num as u32,
                alpha_den: p.alpha_den as u32,
            },
            PolicyEngine::PushOut(_) => PolicyKind::PushOut,
            PolicyEngine::Occamy(_) => PolicyKind::Occamy,
            PolicyEngine::BShare(_) => PolicyKind::BShare,
        }
    }
}

impl SharingPolicy for PolicyEngine {
    fn admit(&self, view: &PolicyView<'_>) -> AdmitDecision {
        match self {
            PolicyEngine::Static(p) => p.admit(view),
            PolicyEngine::Dt(p) => p.admit(view),
            PolicyEngine::PushOut(p) => p.admit(view),
            PolicyEngine::Occamy(p) => p.admit(view),
            PolicyEngine::BShare(p) => p.admit(view),
        }
    }

    fn preempt(&self, view: &PolicyView<'_>) -> Option<usize> {
        match self {
            PolicyEngine::Static(p) => p.preempt(view),
            PolicyEngine::Dt(p) => p.preempt(view),
            PolicyEngine::PushOut(p) => p.preempt(view),
            PolicyEngine::Occamy(p) => p.preempt(view),
            PolicyEngine::BShare(p) => p.preempt(view),
        }
    }

    fn on_read(&mut self, output: usize, delay: Cycle) {
        if let PolicyEngine::BShare(p) = self {
            p.on_read(output, delay);
        }
    }

    fn on_free(&mut self, occupancy: usize) {
        let _ = occupancy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(occ: usize, cap: usize, dst: usize, qlens: &'a [usize]) -> PolicyView<'a> {
        PolicyView {
            occupancy: occ,
            capacity: cap,
            n_out: qlens.len(),
            dst,
            qlens,
        }
    }

    #[test]
    fn static_pool_matches_free_slot_check() {
        let p = StaticPool;
        assert_eq!(p.admit(&view(7, 8, 0, &[7, 0])), AdmitDecision::Accept);
        assert_eq!(p.admit(&view(8, 8, 1, &[8, 0])), AdmitDecision::Reject);
    }

    #[test]
    fn dynamic_thresholds_caps_the_hot_queue() {
        let p = DynamicThresholds::default(); // α = 1
                                              // 8 slots, 5 used, hot queue holds all 5: 5 < 3 fails → reject.
        assert_eq!(p.admit(&view(5, 8, 0, &[5, 0])), AdmitDecision::Reject);
        // Same occupancy, cold queue: 0 < 3 → accept.
        assert_eq!(p.admit(&view(5, 8, 1, &[5, 0])), AdmitDecision::Accept);
        // Early on the hot queue may still grow: 1 < 7.
        assert_eq!(p.admit(&view(1, 8, 0, &[1, 0])), AdmitDecision::Accept);
    }

    #[test]
    fn push_out_evicts_longest_queue_only_at_full() {
        let p = PushOut;
        assert_eq!(p.admit(&view(7, 8, 1, &[6, 1])), AdmitDecision::Accept);
        assert_eq!(
            p.admit(&view(8, 8, 1, &[6, 2])),
            AdmitDecision::Preempt { victim: 0 }
        );
        // Tie between queues 0 and 1 → lowest index.
        assert_eq!(
            p.admit(&view(8, 8, 1, &[4, 4])),
            AdmitDecision::Preempt { victim: 0 }
        );
        // Nothing queued anywhere (all slots mid-write) → reject.
        assert_eq!(p.admit(&view(8, 8, 1, &[0, 0])), AdmitDecision::Reject);
    }

    #[test]
    fn occamy_watermark_and_fair_share() {
        let p = Occamy;
        // cap 16 → watermark 14.
        assert_eq!(Occamy::watermark(16), 14);
        assert_eq!(p.admit(&view(13, 16, 0, &[13, 0])), AdmitDecision::Accept);
        // Above watermark, hot queue over fair share (14·2 > 14): reject.
        assert_eq!(p.admit(&view(14, 16, 0, &[14, 0])), AdmitDecision::Reject);
        // Above watermark, cold queue under share: accept.
        assert_eq!(p.admit(&view(14, 16, 1, &[14, 0])), AdmitDecision::Accept);
        // Full, cold arrival under share → preempt hot queue.
        assert_eq!(
            p.admit(&view(16, 16, 1, &[15, 1])),
            AdmitDecision::Preempt { victim: 0 }
        );
        // Full, hot arrival over share → reject.
        assert_eq!(p.admit(&view(16, 16, 0, &[15, 1])), AdmitDecision::Reject);
    }

    #[test]
    fn bshare_delay_signal_gates_admission() {
        let mut p = BShare::new(8, 2);
        // No delay observed yet → admit.
        assert_eq!(p.admit(&view(4, 8, 0, &[4, 0])), AdmitDecision::Accept);
        p.on_read(0, 20); // measured delay above the bound
        assert_eq!(p.admit(&view(4, 8, 0, &[4, 0])), AdmitDecision::Reject);
        // Empty queue admits regardless of the stale signal.
        assert_eq!(p.admit(&view(4, 8, 0, &[0, 4])), AdmitDecision::Accept);
        p.on_read(0, 3); // congestion cleared
        assert_eq!(p.admit(&view(4, 8, 0, &[4, 0])), AdmitDecision::Accept);
        // Full is still full.
        assert_eq!(p.admit(&view(8, 8, 0, &[4, 4])), AdmitDecision::Reject);
    }

    #[test]
    fn tokens_round_trip_and_engine_kinds_agree() {
        for kind in PolicyKind::all_default() {
            assert_eq!(PolicyKind::parse(kind.token()), Some(kind));
            assert_eq!(kind.engine(4, 8).kind(), kind);
            assert_eq!(kind.engine(4, 8).is_static(), kind.is_static());
        }
        assert_eq!(PolicyKind::parse("nonsense"), None);
    }

    #[test]
    fn longest_queue_tie_breaks_low() {
        assert_eq!(longest_queue(&[0, 0, 0]), None);
        assert_eq!(longest_queue(&[1, 3, 3]), Some(1));
        assert_eq!(longest_queue(&[0, 0, 2]), Some(2));
    }
}
