//! Deterministic fault-injection campaigns.
//!
//! A [`FaultPlan`] is a pre-generated, seeded schedule of faults — bank
//! single-event upsets, input-wire word corruption and drops, credit-return
//! loss, stuck stage control — drawn from its own
//! [`SplitMix64::stream`](simkernel::SplitMix64::stream) so that the fault
//! sequence is (a) bit-reproducible from `(seed, kind, rate)` alone and
//! (b) independent of the traffic stream: changing the workload never
//! changes where the faults strike, and running campaign points on any
//! number of worker threads yields identical results.
//!
//! The plan is pure data; *applying* it is the testbench's job. Storage
//! and control faults go straight to the switch's injection hooks
//! ([`PipelinedSwitch::inject_bank_fault`](crate::rtl::PipelinedSwitch::inject_bank_fault),
//! [`force_stuck_write`](crate::rtl::PipelinedSwitch::force_stuck_write));
//! wire faults pass through a [`WireFaults`] mangler inserted between the
//! traffic generator and the switch, which keeps its own framing mirror so
//! a scheduled fault hits a *word on the wire*, not an idle cycle.

use crate::config::SwitchConfig;
use simkernel::ids::{Addr, Cycle};
use simkernel::SplitMix64;

/// RNG stream index used by traffic generators (convention: campaigns
/// split their base seed so traffic and faults never share a stream).
pub const TRAFFIC_STREAM: u64 = 0;
/// RNG stream index used by [`FaultPlan::generate`].
pub const FAULT_STREAM: u64 = 1;

/// The fault classes a campaign can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Single-event upset: flip one bit of one word in one SRAM bank.
    BankUpset,
    /// Flip one bit of one word on an input wire.
    WireCorrupt,
    /// Eat words on an input wire: a packet vanishes (hit at its header)
    /// or is truncated mid-flight (hit later).
    WireDrop,
    /// Lose one credit-return message on a link's reverse wire.
    CreditLoss,
    /// Stick one pipeline stage's write-control signal low for a while.
    StuckWrite,
}

impl FaultKind {
    /// All injectable classes, in campaign-grid order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::BankUpset,
        FaultKind::WireCorrupt,
        FaultKind::WireDrop,
        FaultKind::CreditLoss,
        FaultKind::StuckWrite,
    ];

    /// Stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BankUpset => "bank-upset",
            FaultKind::WireCorrupt => "wire-corrupt",
            FaultKind::WireDrop => "wire-drop",
            FaultKind::CreditLoss => "credit-loss",
            FaultKind::StuckWrite => "stuck-write",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One scheduled fault: what to do, with every parameter pre-drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Flip `mask` in bank `stage`, slot `slot`.
    BankUpset {
        /// Pipeline stage (bank index).
        stage: usize,
        /// Buffer slot.
        slot: Addr,
        /// XOR mask (single bit for SEU campaigns).
        mask: u64,
    },
    /// XOR `mask` into the next word present on input `input`.
    WireCorrupt {
        /// Input link.
        input: usize,
        /// XOR mask.
        mask: u64,
    },
    /// Suppress the next word on input `input` and the rest of its packet.
    WireDrop {
        /// Input link.
        input: usize,
    },
    /// Lose the next credit return on input `input`'s link.
    CreditLoss {
        /// Input link.
        input: usize,
    },
    /// Suppress bank writes at `stage` for `duration` cycles.
    StuckWrite {
        /// Pipeline stage.
        stage: usize,
        /// Cycles the control stays stuck.
        duration: Cycle,
    },
}

/// A fault with its scheduled injection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Cycle at which to inject.
    pub at: Cycle,
    /// What to inject.
    pub action: FaultAction,
}

/// A deterministic schedule of faults over a simulation horizon.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled faults, sorted by injection cycle.
    faults: std::collections::VecDeque<Fault>,
}

impl FaultPlan {
    /// Generate a plan: at every cycle of `0..horizon` a fault of `kind`
    /// strikes with probability `rate`, its parameters drawn uniformly
    /// over the geometry of `cfg`. All randomness comes from
    /// `SplitMix64::stream(seed, FAULT_STREAM)` — same arguments, same
    /// plan, bit for bit, on any machine and any `--jobs`.
    pub fn generate(
        kind: FaultKind,
        rate: f64,
        horizon: Cycle,
        cfg: &SwitchConfig,
        seed: u64,
    ) -> FaultPlan {
        let mut rng = SplitMix64::stream(seed, FAULT_STREAM);
        let stages = cfg.stages();
        let mut faults = std::collections::VecDeque::new();
        for at in 0..horizon {
            if !rng.chance(rate) {
                continue;
            }
            let action = match kind {
                FaultKind::BankUpset => FaultAction::BankUpset {
                    stage: rng.below_usize(stages),
                    slot: Addr(rng.below_usize(cfg.slots)),
                    mask: 1u64 << rng.below(cfg.word_bits as u64),
                },
                FaultKind::WireCorrupt => FaultAction::WireCorrupt {
                    input: rng.below_usize(cfg.n_in),
                    mask: 1u64 << rng.below(cfg.word_bits as u64),
                },
                FaultKind::WireDrop => FaultAction::WireDrop {
                    input: rng.below_usize(cfg.n_in),
                },
                FaultKind::CreditLoss => FaultAction::CreditLoss {
                    input: rng.below_usize(cfg.n_in),
                },
                FaultKind::StuckWrite => FaultAction::StuckWrite {
                    stage: rng.below_usize(stages),
                    duration: 1 + rng.below(stages as u64),
                },
            };
            faults.push_back(Fault { at, action });
        }
        FaultPlan { faults }
    }

    /// Total faults scheduled.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled (or everything has fired).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Cycle of the earliest fault still scheduled, if any. Lets a
    /// fast-forwarding driver bound a time skip so no injection is missed.
    pub fn next_due(&self) -> Option<Cycle> {
        self.faults.front().map(|f| f.at)
    }

    /// Pop every fault scheduled at or before `now` into `due`
    /// (call once per cycle). The buffer is cleared first; passing a
    /// caller-owned scratch keeps the per-cycle fault poll off the
    /// allocator on the hot simulation loops.
    pub fn take_due_into(&mut self, now: Cycle, due: &mut Vec<Fault>) {
        due.clear();
        while let Some(&f) = self.faults.front() {
            if f.at > now {
                break;
            }
            due.push(f);
            self.faults.pop_front();
        }
    }

    /// Allocating convenience wrapper over [`FaultPlan::take_due_into`]
    /// (tests and cold paths only).
    pub fn take_due(&mut self, now: Cycle) -> Vec<Fault> {
        let mut due = Vec::new();
        self.take_due_into(now, &mut due);
        due
    }
}

/// Applies [`FaultAction::WireCorrupt`] / [`FaultAction::WireDrop`] to the
/// words between the traffic generator and the switch's input pins.
///
/// The mangler keeps a framing mirror (word index within the current
/// packet) per input so it can tell a header hit from a mid-packet hit,
/// and it holds a scheduled fault armed until a word is actually present —
/// a fault scheduled during an idle cycle strikes the next real word.
#[derive(Debug, Clone)]
pub struct WireFaults {
    stages: usize,
    /// Framing mirror: word index of the *original* stream per input.
    k: Vec<usize>,
    /// Input is mid-drop: suppress the rest of the current packet.
    dropping: Vec<bool>,
    /// Armed one-shot corruption masks per input.
    armed_corrupt: Vec<u64>,
    /// Armed one-shot drops per input.
    armed_drop: Vec<bool>,
    /// Current packet already counted in `corrupted_packets`.
    hit: Vec<bool>,
    /// Words whose bits were flipped on the wire.
    pub corrupted_words: u64,
    /// Packets that had at least one word corrupted.
    pub corrupted_packets: u64,
    /// Packets eaten whole (drop hit the header).
    pub dropped_packets: u64,
    /// Packets truncated mid-flight (drop hit a later word).
    pub truncated_packets: u64,
}

impl WireFaults {
    /// A mangler for `n_in` inputs carrying `stages`-word packets.
    pub fn new(n_in: usize, stages: usize) -> Self {
        WireFaults {
            stages,
            k: vec![0; n_in],
            dropping: vec![false; n_in],
            armed_corrupt: vec![0; n_in],
            armed_drop: vec![false; n_in],
            hit: vec![false; n_in],
            corrupted_words: 0,
            corrupted_packets: 0,
            dropped_packets: 0,
            truncated_packets: 0,
        }
    }

    /// Arm a wire fault. Non-wire actions are ignored (the campaign
    /// driver routes them to the switch's own hooks).
    pub fn schedule(&mut self, action: FaultAction) {
        match action {
            FaultAction::WireCorrupt { input, mask } => {
                self.armed_corrupt[input] |= mask;
            }
            FaultAction::WireDrop { input } => {
                self.armed_drop[input] = true;
            }
            _ => {}
        }
    }

    /// Mangle one cycle's input words in place (call right before
    /// `tick`). Idle inputs leave armed faults armed.
    pub fn apply(&mut self, wire: &mut [Option<u64>]) {
        for (i, w) in wire.iter_mut().enumerate() {
            let Some(word) = w else {
                continue;
            };
            let k = self.k[i];
            if k == 0 {
                // Header word: a new packet starts on this input.
                self.hit[i] = false;
            }
            self.k[i] = (k + 1) % self.stages;
            if self.dropping[i] {
                *w = None;
                if self.k[i] == 0 {
                    self.dropping[i] = false;
                }
                continue;
            }
            if self.armed_drop[i] {
                self.armed_drop[i] = false;
                self.dropping[i] = self.k[i] != 0;
                if k == 0 {
                    self.dropped_packets += 1;
                } else {
                    self.truncated_packets += 1;
                }
                *w = None;
                continue;
            }
            let mask = std::mem::take(&mut self.armed_corrupt[i]);
            if mask != 0 {
                *w = Some(*word ^ mask);
                self.corrupted_words += 1;
                // A packet struck twice is still one corrupted packet —
                // coverage accounting divides by *packets*.
                if !self.hit[i] {
                    self.hit[i] = true;
                    self.corrupted_packets += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SwitchConfig {
        SwitchConfig::symmetric(4, 16)
    }

    #[test]
    fn plans_are_bit_reproducible() {
        let a = FaultPlan::generate(FaultKind::BankUpset, 0.01, 5_000, &cfg(), 42);
        let b = FaultPlan::generate(FaultKind::BankUpset, 0.01, 5_000, &cfg(), 42);
        assert_eq!(a.faults, b.faults);
        assert!(!a.is_empty(), "0.01 × 5000 cycles yields faults");
    }

    #[test]
    fn seed_and_kind_change_the_plan() {
        let a = FaultPlan::generate(FaultKind::BankUpset, 0.05, 2_000, &cfg(), 1);
        let b = FaultPlan::generate(FaultKind::BankUpset, 0.05, 2_000, &cfg(), 2);
        assert_ne!(a.faults, b.faults, "seed must matter");
        let c = FaultPlan::generate(FaultKind::WireDrop, 0.05, 2_000, &cfg(), 1);
        assert!(
            c.faults
                .iter()
                .all(|f| matches!(f.action, FaultAction::WireDrop { .. })),
            "kind selects the action"
        );
    }

    #[test]
    fn fault_stream_is_independent_of_traffic_stream() {
        // The traffic stream (stream 0) and fault stream (stream 1) of
        // the same base seed must not collide.
        let mut t = SplitMix64::stream(7, TRAFFIC_STREAM);
        let mut f = SplitMix64::stream(7, FAULT_STREAM);
        assert_ne!(t.next_u64(), f.next_u64());
    }

    #[test]
    fn take_due_pops_in_order() {
        let mut p = FaultPlan::generate(FaultKind::CreditLoss, 0.2, 100, &cfg(), 9);
        let total = p.len();
        let mut seen = 0;
        for now in 0..100 {
            for f in p.take_due(now) {
                assert!(f.at <= now);
                seen += 1;
            }
        }
        assert_eq!(seen, total);
        assert!(p.is_empty());
    }

    #[test]
    fn wire_corrupt_hits_next_present_word() {
        let mut wf = WireFaults::new(2, 4);
        wf.schedule(FaultAction::WireCorrupt {
            input: 0,
            mask: 0b1,
        });
        let mut wire = vec![None, Some(9)];
        wf.apply(&mut wire); // input 0 idle: fault stays armed
        assert_eq!(wire, vec![None, Some(9)]);
        let mut wire = vec![Some(4), None];
        wf.apply(&mut wire);
        assert_eq!(wire[0], Some(5), "bit flipped on the wire");
        assert_eq!(wf.corrupted_words, 1);
        let mut wire = vec![Some(4), None];
        wf.apply(&mut wire);
        assert_eq!(wire[0], Some(4), "one-shot");
    }

    #[test]
    fn wire_drop_at_header_eats_whole_packet() {
        let mut wf = WireFaults::new(1, 3);
        wf.schedule(FaultAction::WireDrop { input: 0 });
        for w in [10, 11, 12] {
            let mut wire = vec![Some(w)];
            wf.apply(&mut wire);
            assert_eq!(wire[0], None, "whole packet suppressed");
        }
        assert_eq!(wf.dropped_packets, 1);
        assert_eq!(wf.truncated_packets, 0);
        // The next packet passes untouched.
        let mut wire = vec![Some(20)];
        wf.apply(&mut wire);
        assert_eq!(wire[0], Some(20));
    }

    #[test]
    fn wire_drop_mid_packet_truncates() {
        let mut wf = WireFaults::new(1, 3);
        let mut wire = vec![Some(10)];
        wf.apply(&mut wire); // header passes
        assert_eq!(wire[0], Some(10));
        wf.schedule(FaultAction::WireDrop { input: 0 });
        let mut wire = vec![Some(11)];
        wf.apply(&mut wire);
        assert_eq!(wire[0], None);
        let mut wire = vec![Some(12)];
        wf.apply(&mut wire);
        assert_eq!(wire[0], None, "rest of the packet suppressed");
        assert_eq!(wf.truncated_packets, 1);
        let mut wire = vec![Some(20)];
        wf.apply(&mut wire);
        assert_eq!(wire[0], Some(20), "next packet passes");
    }
}
