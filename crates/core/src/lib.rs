//! # switch-core — the pipelined-memory shared-buffer switch
//!
//! This crate implements the contribution of Katevenis, Vatsolaki &
//! Efthymiou, *"Pipelined Memory Shared Buffer for VLSI Switches"*
//! (SIGCOMM 1995): a single-chip crossbar switch whose shared buffer is a
//! chain of single-ported memory banks swept by operation *waves*.
//!
//! Two models are provided:
//!
//! * [`rtl::PipelinedSwitch`] — a **word-level, register-transfer-accurate
//!   model**: real input latch rows, a shared output register row, real
//!   SRAM banks (port-checked), a control-signal pipeline, the read/write
//!   wave arbiter, buffer management (free list + per-output descriptor
//!   queues) and automatic cut-through. Every timing claim of §3.2–§3.4 is
//!   observable on this model cycle by cycle.
//! * [`behavioral::BehavioralSwitch`] — a **cell-level model** with
//!   identical initiation semantics (one wave per cycle, read priority,
//!   staggered initiation) but packets abstracted to descriptors — orders
//!   of magnitude faster, used for the statistical experiments.
//!
//! Plus:
//!
//! * [`halfq::HalfQuantumBuffer`] — the §3.5 half-quantum organization:
//!   two pipelined memories of `n` stages each, packets of `n` words, one
//!   read *and* one write initiation per cycle;
//! * [`credit::CreditedInput`] — link-level credit flow control as used by
//!   the Telegraphos prototypes, guaranteeing loss-free operation.
//!
//! ## The timing contract (fixed by the paper, enforced by tests)
//!
//! Let a packet of `S = n_in + n_out` words arrive on input `i`, word `k`
//! on the wire in cycle `a + k` and latched into input latch `L[i][k]` at
//! the end of that cycle. Then:
//!
//! * a **write wave** may initiate at any `ws ∈ [a+1, a+S]`; stage `k`
//!   writes `L[i][k]` into bank `k` during `ws + k`, always after the word
//!   was latched and before the next packet's word overwrites the latch —
//!   this is why *no input double buffering* is needed (§3.2);
//! * a **read wave** at `rs ≥ ws` reads bank `k` during `rs + k`, which
//!   never overtakes the write of the same slot; word `k` appears on the
//!   output link during `rs + k + 1`;
//! * with **cut-through** (§3.3), the read may fuse onto the write wave
//!   itself (`rs = ws`): the output register samples the word from the
//!   write bus, so the first word can leave in cycle `a + 2`;
//! * **one wave initiates per cycle** (bank 0 is single-ported); the
//!   arbiter gives priority to reads, and the resulting *staggered
//!   initiation* adds an expected `(p/4)·(n−1)/n` cycles of cut-through
//!   latency (§3.4) — measured by experiment E6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod behavioral;
pub mod bufmgr;
pub mod config;
pub mod credit;
pub mod ctrl;
pub mod events;
pub mod faultsim;
pub mod halfq;
pub mod ibank;
pub mod policy;
pub mod recovery;
pub mod reference;
pub mod rtl;
pub mod vcroute;
pub mod widemem;
pub mod wrr;

pub use arbiter::{ArbiterPolicy, ReadPolicy};
pub use behavioral::BehavioralSwitch;
pub use bufmgr::BufferManager;
pub use config::SwitchConfig;
pub use credit::CreditedInput;
pub use ctrl::{ControlChecker, ControlPipeline};
pub use events::IntegrityReason;
pub use faultsim::{Fault, FaultAction, FaultKind, FaultPlan, WireFaults};
pub use halfq::HalfQuantumBuffer;
pub use ibank::{InterleavedSwitch, InterleavedSwitchConfig};
pub use policy::{AdmitDecision, PolicyEngine, PolicyKind, PolicyView, SharingPolicy};
pub use recovery::{
    RecoveryConfig, RecoveryReport, RecoveryWindows, RetryConfig, RetryReceiver, RetrySender,
    RxVerdict,
};
pub use rtl::{DeliveredPacket, PipelinedSwitch};
pub use vcroute::{RoutingTable, TranslatedSwitch};
pub use widemem::{WideMemorySwitchRtl, WideSwitchConfig};
pub use wrr::WrrMux;
