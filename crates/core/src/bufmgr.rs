//! Buffer management: free list and per-output descriptor queues.
//!
//! The paper keeps buffer (address) management deliberately orthogonal to
//! the pipelined memory itself (§3.3: "the circuits that provide these …
//! are independent of the pipelined memory"). This module implements the
//! scheme the Telegraphos switches use (\[Kate94\], \[KVES95\]): a free list
//! of packet slots plus one FIFO descriptor queue per outgoing link.
//!
//! A slot's lifetime: allocated when a packet header arrives → its
//! descriptor is queued on the destination's output queue → the write wave
//! is initiated (descriptor becomes *readable*) → a read wave pops the
//! descriptor and **frees the slot immediately**, because any later write
//! wave to the same address trails the read wave stage by stage and can
//! never overtake it. This early free is a distinctive economy of the
//! pipelined organization: a slot is held only from header arrival to read
//! initiation, not to read completion.
//!
//! Queue entries carry a generation tag so a slot freed and reallocated
//! while a stale entry is still queued (possible after a latch overrun)
//! can never be confused with its new occupant.

use crate::events::IntegrityReason;
use simkernel::ids::{Addr, Cycle, PortId};
use std::collections::VecDeque;

/// Per-packet bookkeeping while the packet owns a buffer slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Descriptor {
    /// Packet id (decoded from the header).
    pub id: u64,
    /// Input link of arrival.
    pub input: PortId,
    /// Primary (lowest-numbered) destination output link.
    pub dst: PortId,
    /// Full destination set as a bitmask (bit j = output j). Unicast
    /// packets have exactly one bit set; multicast packets several — the
    /// slot is freed when the *last* copy's read wave initiates.
    pub dsts: u32,
    /// Cycle the header arrived.
    pub birth: Cycle,
    /// Cycle the write wave was initiated, once scheduled.
    pub write_start: Option<Cycle>,
    /// Per-slot checksum computed at ingress once the tail word arrived
    /// (the value the read-time scrub re-derives from the banks).
    pub checksum: Option<u64>,
    /// Set when ingress integrity machinery condemned the packet while it
    /// was still buffered (truncation, ingress payload mismatch); the
    /// read-side scan drops it instead of transmitting, recording why.
    pub poisoned: Option<IntegrityReason>,
}

impl Descriptor {
    /// A unicast descriptor.
    pub fn unicast(id: u64, input: PortId, dst: PortId, birth: Cycle) -> Self {
        Descriptor {
            id,
            input,
            dst,
            dsts: 1 << dst.index(),
            birth,
            write_start: None,
            checksum: None,
            poisoned: None,
        }
    }

    /// A descriptor for the given destination bitmask.
    pub fn multicast(id: u64, input: PortId, dsts: u32, birth: Cycle) -> Self {
        assert!(dsts != 0, "destination set must be non-empty");
        Descriptor {
            id,
            input,
            dst: PortId(dsts.trailing_zeros() as usize),
            dsts,
            birth,
            write_start: None,
            checksum: None,
            poisoned: None,
        }
    }

    /// Number of copies to be transmitted.
    pub fn fanout(&self) -> u32 {
        self.dsts.count_ones()
    }

    /// Iterate the destination outputs.
    pub fn destinations(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..32).filter(|j| self.dsts & (1 << j) != 0).map(PortId)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    gen: u64,
    desc: Option<Descriptor>,
    /// Copies not yet claimed by a read wave.
    refs: u32,
}

/// Free list + output queues over `slots` packet slots.
#[derive(Debug, Clone)]
pub struct BufferManager {
    slots: Vec<Slot>,
    free: Vec<Addr>,
    queues: Vec<VecDeque<(Addr, u64)>>,
}

impl BufferManager {
    /// A manager for `slots` packet slots and `n_out` output queues.
    pub fn new(slots: usize, n_out: usize) -> Self {
        assert!(slots >= 1 && n_out >= 1);
        BufferManager {
            slots: (0..slots)
                .map(|_| Slot {
                    gen: 0,
                    desc: None,
                    refs: 0,
                })
                .collect(),
            free: (0..slots).rev().map(Addr).collect(),
            queues: vec![VecDeque::new(); n_out],
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently allocated.
    pub fn occupancy(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Queued packets for one output (readable or not).
    pub fn queue_len(&self, out: PortId) -> usize {
        self.queues[out.index()].len()
    }

    /// Live queued packets for one output — stale generation-tagged
    /// entries excluded. This is the count a sharing policy's view uses
    /// (and what the behavioral model's eagerly-maintained queues hold).
    pub fn queue_len_live(&self, out: PortId) -> usize {
        self.queues[out.index()]
            .iter()
            .filter(|&&(addr, gen)| {
                let s = &self.slots[addr.index()];
                s.gen == gen && s.desc.is_some()
            })
            .count()
    }

    /// The rearmost live entry of `out`'s queue whose descriptor (and
    /// remaining reference count) satisfies `pred` — the sharing
    /// policies' eviction scan.
    pub fn rearmost_matching(
        &self,
        out: PortId,
        mut pred: impl FnMut(&Descriptor, u32) -> bool,
    ) -> Option<Addr> {
        self.queues[out.index()]
            .iter()
            .rev()
            .find_map(|&(addr, gen)| {
                let s = &self.slots[addr.index()];
                match &s.desc {
                    Some(d) if s.gen == gen && pred(d, s.refs) => Some(addr),
                    _ => None,
                }
            })
    }

    /// Evict a buffered packet (sharing-policy push-out / preemptive
    /// drop): every queued reference is removed — all copies of a
    /// multicast leave together — and the slot is freed with a
    /// generation bump. Returns the descriptor. Panics if the slot is
    /// not allocated; callers select victims via
    /// [`BufferManager::rearmost_matching`].
    pub fn evict(&mut self, addr: Addr) -> Descriptor {
        let slot = &mut self.slots[addr.index()];
        let d = slot.desc.take().expect("evicting unallocated slot");
        let gen = slot.gen;
        slot.gen += 1;
        slot.refs = 0;
        self.free.push(addr);
        for j in d.destinations() {
            self.queues[j.index()].retain(|&(a, g)| !(a == addr && g == gen));
        }
        d
    }

    /// Allocate a slot for an arriving packet and enqueue its descriptor
    /// on every destination queue. `None` when the buffer is full.
    pub fn alloc(&mut self, desc: Descriptor) -> Option<Addr> {
        let addr = self.free.pop()?;
        let dsts: Vec<PortId> = desc.destinations().collect();
        debug_assert!(!dsts.is_empty());
        let slot = &mut self.slots[addr.index()];
        debug_assert!(slot.desc.is_none(), "free-list invariant violated");
        slot.refs = desc.fanout();
        let gen = slot.gen;
        slot.desc = Some(desc);
        for d in dsts {
            self.queues[d.index()].push_back((addr, gen));
        }
        Some(addr)
    }

    /// Record that the write wave for `addr` initiated at `ws`.
    pub fn mark_write_started(&mut self, addr: Addr, ws: Cycle) {
        let d = self.slots[addr.index()]
            .desc
            .as_mut()
            .expect("slot not allocated");
        debug_assert!(d.write_start.is_none(), "write started twice");
        d.write_start = Some(ws);
    }

    /// The descriptor at `addr`, if allocated.
    pub fn descriptor(&self, addr: Addr) -> Option<&Descriptor> {
        self.slots[addr.index()].desc.as_ref()
    }

    /// Record the ingress-computed checksum for the packet at `addr`.
    /// No-op if the slot was already freed (cut-through read outran the
    /// tail) — the checksum would have nothing left to protect.
    pub fn set_checksum(&mut self, addr: Addr, sum: u64) {
        if let Some(d) = self.slots[addr.index()].desc.as_mut() {
            d.checksum = Some(sum);
        }
    }

    /// Condemn the packet at `addr`: the read-side scan will drop it
    /// instead of transmitting. Returns `false` (no-op) if the slot is
    /// already freed — the packet escaped on a cut-through read and only
    /// egress checks can flag it now.
    pub fn poison(&mut self, addr: Addr, reason: IntegrityReason) -> bool {
        match self.slots[addr.index()].desc.as_mut() {
            Some(d) => {
                d.poisoned = Some(reason);
                true
            }
            None => false,
        }
    }

    /// The head-of-queue descriptor for an output, skipping (and
    /// discarding) stale entries whose slot was freed or reallocated.
    pub fn head(&mut self, out: PortId) -> Option<(Addr, &Descriptor)> {
        let q = &mut self.queues[out.index()];
        while let Some(&(addr, gen)) = q.front() {
            let slot = &self.slots[addr.index()];
            if slot.gen == gen && slot.desc.is_some() {
                // Re-borrow immutably for the return value.
                let addr2 = addr;
                let d = self.slots[addr2.index()].desc.as_ref().expect("checked");
                return Some((addr2, d));
            }
            q.pop_front();
        }
        None
    }

    /// Pop the head descriptor of an output queue for a read-wave
    /// initiation. The reference count drops by one; the slot is freed
    /// when the LAST copy's read initiates (any later write wave to the
    /// reused address trails every in-flight read). Returns the address,
    /// a descriptor copy, and whether the slot was freed. Panics if the
    /// queue is empty — the caller must have observed a head via
    /// [`BufferManager::head`].
    pub fn pop_and_free(&mut self, out: PortId) -> (Addr, Descriptor, bool) {
        loop {
            let (addr, gen) = self.queues[out.index()]
                .pop_front()
                .expect("pop from empty output queue");
            let slot = &mut self.slots[addr.index()];
            if slot.gen == gen && slot.desc.is_some() {
                debug_assert!(slot.refs > 0);
                slot.refs -= 1;
                if slot.refs == 0 {
                    let d = slot.desc.take().expect("checked");
                    slot.gen += 1;
                    self.free.push(addr);
                    return (addr, d, true);
                }
                let d = slot.desc.clone().expect("checked");
                return (addr, d, false);
            }
            // stale entry — keep scanning
        }
    }

    /// Forcibly release a slot (latch overrun path): the descriptor is
    /// discarded and any queued references become stale.
    pub fn release(&mut self, addr: Addr) -> Descriptor {
        let slot = &mut self.slots[addr.index()];
        let d = slot.desc.take().expect("releasing unallocated slot");
        slot.gen += 1;
        slot.refs = 0;
        self.free.push(addr);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(id: u64, dst: usize) -> Descriptor {
        Descriptor::unicast(id, PortId(0), PortId(dst), 0)
    }

    #[test]
    fn alloc_until_full() {
        let mut m = BufferManager::new(2, 2);
        assert!(m.alloc(desc(1, 0)).is_some());
        assert!(m.alloc(desc(2, 1)).is_some());
        assert!(m.alloc(desc(3, 0)).is_none(), "buffer full");
        assert_eq!(m.occupancy(), 2);
    }

    #[test]
    fn fifo_order_per_output() {
        let mut m = BufferManager::new(4, 1);
        let a1 = m.alloc(desc(1, 0)).unwrap();
        let _ = m.alloc(desc(2, 0)).unwrap();
        let (ha, hd) = m.head(PortId(0)).unwrap();
        assert_eq!((ha, hd.id), (a1, 1));
        let (pa, pd, freed) = m.pop_and_free(PortId(0));
        assert_eq!((pa, pd.id, freed), (a1, 1, true));
        let (_, hd2) = m.head(PortId(0)).unwrap();
        assert_eq!(hd2.id, 2);
    }

    #[test]
    fn pop_frees_slot() {
        let mut m = BufferManager::new(1, 1);
        m.alloc(desc(1, 0)).unwrap();
        assert!(m.alloc(desc(2, 0)).is_none());
        m.pop_and_free(PortId(0));
        assert_eq!(m.occupancy(), 0);
        assert!(m.alloc(desc(2, 0)).is_some());
    }

    #[test]
    fn stale_entries_skipped_after_release() {
        let mut m = BufferManager::new(2, 1);
        let a1 = m.alloc(desc(1, 0)).unwrap();
        m.alloc(desc(2, 0)).unwrap();
        // Packet 1 suffers a latch overrun; its slot is released and then
        // reallocated to packet 3 (same output).
        m.release(a1);
        let a3 = m.alloc(desc(3, 0)).unwrap();
        assert_eq!(a3, a1, "LIFO free list reuses the slot");
        // Queue order must be: 2 (oldest live), then 3 — the stale entry
        // for packet 1 must not surface packet 3 early.
        let (_, h) = m.head(PortId(0)).unwrap();
        assert_eq!(h.id, 2);
        assert_eq!(m.pop_and_free(PortId(0)).1.id, 2);
        assert_eq!(m.pop_and_free(PortId(0)).1.id, 3);
        assert!(m.head(PortId(0)).is_none());
    }

    #[test]
    fn write_start_recorded() {
        let mut m = BufferManager::new(1, 1);
        let a = m.alloc(desc(1, 0)).unwrap();
        m.mark_write_started(a, 42);
        assert_eq!(m.descriptor(a).unwrap().write_start, Some(42));
    }

    #[test]
    fn queues_are_independent() {
        let mut m = BufferManager::new(4, 2);
        m.alloc(desc(1, 0)).unwrap();
        m.alloc(desc(2, 1)).unwrap();
        assert_eq!(m.queue_len(PortId(0)), 1);
        assert_eq!(m.queue_len(PortId(1)), 1);
        assert_eq!(m.pop_and_free(PortId(1)).1.id, 2);
        assert_eq!(m.head(PortId(0)).unwrap().1.id, 1);
    }

    #[test]
    fn checksum_and_poison_lifecycle() {
        let mut m = BufferManager::new(2, 1);
        let a = m.alloc(desc(1, 0)).unwrap();
        m.set_checksum(a, 0xABCD);
        assert_eq!(m.descriptor(a).unwrap().checksum, Some(0xABCD));
        assert!(m.poison(a, IntegrityReason::TruncatedPacket));
        assert_eq!(
            m.descriptor(a).unwrap().poisoned,
            Some(IntegrityReason::TruncatedPacket)
        );
        // Freed slots: both become no-ops instead of panicking (the
        // cut-through race the callers hit).
        m.release(a);
        m.set_checksum(a, 1);
        assert!(!m.poison(a, IntegrityReason::ChecksumMismatch));
    }

    #[test]
    #[should_panic(expected = "pop from empty")]
    fn pop_empty_panics() {
        let mut m = BufferManager::new(1, 1);
        let _ = m.pop_and_free(PortId(0));
    }
}
