//! Fault recovery and graceful degradation.
//!
//! The fault-injection campaigns (e14–e16) established the *detection*
//! doctrine: every modeled fault class is caught and counted. This module
//! supplies the *recovery* half — the ladder real switch silicon climbs
//! before giving up on a fault:
//!
//! 1. **correct** — SEC-DED ECC on the buffer banks repairs single-bit
//!    upsets in place (the `membank` scrub machinery), invisibly to the
//!    datapath timing;
//! 2. **repair** — a bank failing ECC repeatedly is masked out and a spare
//!    column hot-swapped in its place ([`RecoveryConfig::failover_threshold`]);
//! 3. **degrade** — while a failover settles (and permanently once spares
//!    run out) the switch sheds load at admission instead of corrupting
//!    data: conservation and per-flow FIFO still hold, throughput drops;
//! 4. **retry** — wire faults at the credited input are retransmitted
//!    through a Go-Back-N window ([`RetrySender`]/[`RetryReceiver`]);
//! 5. **escalate** — a drain that still hangs gets one resync attempt
//!    before `SimError::Watchdog`
//!    ([`simkernel::run_until_quiescent_escalating`]).
//!
//! [`RecoveryWindows`] is the declared-outage ledger the oracle audits
//! against: loss is legal *inside* a window, never outside one, and the
//! mean window length is the campaign's MTTR metric.

use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// Recovery policy of a switch model. The default is fully disabled —
/// a switch built with it behaves (and benchmarks) exactly as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// SEC-DED ECC on the buffer banks: single-bit upsets are corrected
    /// in place at the read-side scrub instead of condemning the packet.
    pub ecc: bool,
    /// Spare bank columns held in reserve for hot failover.
    pub spare_banks: usize,
    /// ECC corrections a single bank may accumulate before it is deemed
    /// failing and swapped for a spare. 0 disables failover.
    pub failover_threshold: u64,
    /// Admission-pause length (cycles) modeling the spare-copy settle
    /// time of one failover. 0 lets the model pick its natural window
    /// (one full buffer sweep, `stages`·`slots`-independent: see each
    /// model's docs).
    pub degrade_window: u64,
}

impl RecoveryConfig {
    /// Correction only: ECC armed, no spares, no failover. Timing-
    /// invisible — a run under this policy is cycle-exact with an
    /// unprotected run whose upsets never struck.
    pub fn ecc_only() -> Self {
        RecoveryConfig {
            ecc: true,
            ..Self::default()
        }
    }

    /// The full ladder: ECC, `spares` hot-swap columns, failover after
    /// `threshold` corrections on one bank.
    pub fn full(spares: usize, threshold: u64) -> Self {
        RecoveryConfig {
            ecc: true,
            spare_banks: spares,
            failover_threshold: threshold,
            degrade_window: 0,
        }
    }

    /// Is any recovery machinery armed?
    pub fn enabled(&self) -> bool {
        self.ecc || self.spare_banks > 0
    }

    /// Is hot failover armed?
    pub fn failover_enabled(&self) -> bool {
        self.ecc && self.failover_threshold > 0
    }
}

/// The declared-outage ledger: closed integer spans `[start, until]` of
/// cycles during which the switch was *recovering* (failover settle,
/// degraded admission, link replay) and loss is excused. Overlapping or
/// abutting openings merge into one span, so `count()` is the number of
/// distinct recovery episodes and `mean_len()` is the MTTR in cycles.
#[derive(Debug, Clone, Default)]
pub struct RecoveryWindows {
    spans: Vec<(Cycle, Cycle)>,
}

impl RecoveryWindows {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare (or extend) a recovery window covering `[now, now + len]`.
    /// Openings arrive in cycle order; a window opened while the previous
    /// one is still active extends it rather than starting a new episode.
    pub fn open(&mut self, now: Cycle, len: u64) {
        let until = now + len;
        if let Some(last) = self.spans.last_mut() {
            debug_assert!(now >= last.0, "windows open in cycle order");
            if now <= last.1 {
                last.1 = last.1.max(until);
                return;
            }
        }
        self.spans.push((now, until));
    }

    /// Is a window active at cycle `now`? (Only the newest span can be —
    /// openings arrive in cycle order.)
    pub fn active(&self, now: Cycle) -> bool {
        self.spans
            .last()
            .is_some_and(|&(s, u)| now >= s && now <= u)
    }

    /// Did any window cover cycle `c`?
    pub fn contains(&self, c: Cycle) -> bool {
        self.spans.iter().any(|&(s, u)| c >= s && c <= u)
    }

    /// Distinct recovery episodes.
    pub fn count(&self) -> usize {
        self.spans.len()
    }

    /// Total cycles spent inside windows.
    pub fn total_cycles(&self) -> u64 {
        self.spans.iter().map(|&(s, u)| u - s + 1).sum()
    }

    /// Mean time to recover: mean window length in cycles (`None` when no
    /// window ever opened).
    pub fn mean_len(&self) -> Option<f64> {
        if self.spans.is_empty() {
            None
        } else {
            Some(self.total_cycles() as f64 / self.spans.len() as f64)
        }
    }

    /// The closed spans, in cycle order.
    pub fn spans(&self) -> &[(Cycle, Cycle)] {
        &self.spans
    }
}

/// Aggregate recovery outcome of one run — what the chaos campaign and
/// the conformance oracle consume.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Single-bit upsets corrected in place.
    pub corrections: u64,
    /// Words found corrupted beyond single-error correction.
    pub uncorrectable: u64,
    /// Banks hot-swapped for a spare.
    pub failovers: u64,
    /// Packets shed at admission inside recovery windows.
    pub shed: u64,
    /// Frames retransmitted by the link-retry machinery.
    pub retries: u64,
    /// Frames abandoned after the replay bound.
    pub retry_give_ups: u64,
    /// The declared-outage ledger.
    pub windows: RecoveryWindows,
}

/// Configuration of the Go-Back-N link-retry pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Maximum unacknowledged frames in flight.
    pub window: usize,
    /// Times one frame may be replayed before it is abandoned.
    pub max_replays: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            window: 8,
            max_replays: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct SentFrame {
    seq: u64,
    words: Vec<u64>,
    replays: u32,
}

/// Sender half of the link-level retry window (Go-Back-N).
///
/// The testbench copies each transmitted frame into the window; on a
/// [`RxVerdict::Nak`] from the receiver the sender rewinds to the
/// rejected sequence number and replays everything from there, in order.
/// A frame replayed past [`RetryConfig::max_replays`] is abandoned (the
/// bounded-replay guarantee: a hard-dead link cannot wedge the input).
#[derive(Debug, Clone)]
pub struct RetrySender {
    cfg: RetryConfig,
    next_seq: u64,
    window: VecDeque<SentFrame>,
    /// Sequence number of the next frame to replay (`None`: in-order
    /// transmission of new frames). Tracked by seq, not index, so
    /// interleaved ACKs can shrink the window mid-replay.
    replay_from: Option<u64>,
    /// Frames retransmitted.
    pub retries: u64,
    /// Frames abandoned after the replay bound.
    pub give_ups: u64,
}

impl RetrySender {
    /// A sender with an empty window.
    pub fn new(cfg: RetryConfig) -> Self {
        RetrySender {
            cfg,
            next_seq: 0,
            window: VecDeque::new(),
            replay_from: None,
            retries: 0,
            give_ups: 0,
        }
    }

    /// May a *new* frame be sent this cycle? (No while the window is full
    /// or a replay is in progress — Go-Back-N retransmits strictly before
    /// new data.)
    pub fn can_send(&self) -> bool {
        self.replay_from.is_none() && self.window.len() < self.cfg.window
    }

    /// Register a newly transmitted frame; returns its sequence number.
    pub fn send(&mut self, words: Vec<u64>) -> u64 {
        assert!(self.can_send(), "send() while !can_send()");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back(SentFrame {
            seq,
            words,
            replays: 0,
        });
        seq
    }

    /// Cumulative acknowledgement: the receiver accepted everything
    /// through `seq`.
    pub fn ack(&mut self, seq: u64) {
        while self.window.front().is_some_and(|f| f.seq <= seq) {
            self.window.pop_front();
        }
        if self.window.is_empty() {
            self.replay_from = None;
        }
    }

    /// Negative acknowledgement: the receiver is still waiting for `seq`.
    /// Rewinds transmission to that frame (Go-Back-N). Frames that have
    /// exhausted their replay budget are abandoned on the spot.
    pub fn nak(&mut self, seq: u64) {
        if seq > 0 {
            self.ack(seq - 1); // everything before seq is implicitly acked
        }
        while self
            .window
            .front()
            .is_some_and(|f| f.replays >= self.cfg.max_replays)
        {
            self.window.pop_front();
            self.give_ups += 1;
        }
        self.replay_from = self.window.front().map(|f| f.seq);
    }

    /// The next frame to retransmit, if a replay is in progress. Each
    /// call yields one frame `(seq, words)` and advances; after the last
    /// windowed frame the sender returns to new-data transmission.
    pub fn next_replay(&mut self) -> Option<(u64, Vec<u64>)> {
        let want = self.replay_from?;
        let Some(at) = self.window.iter().position(|f| f.seq >= want) else {
            // Everything from the rewind point was ACKed meanwhile.
            self.replay_from = None;
            return None;
        };
        let last = at + 1 == self.window.len();
        let f = &mut self.window[at];
        f.replays += 1;
        self.retries += 1;
        let out = (f.seq, f.words.clone());
        self.replay_from = (!last).then_some(out.0 + 1);
        Some(out)
    }

    /// Frames sent but not yet acknowledged.
    pub fn outstanding(&self) -> usize {
        self.window.len()
    }
}

/// Receiver verdict on one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// In-order, CRC-clean: deliver to the switch.
    Accept,
    /// Already delivered (a replay overshoot): discard silently.
    Duplicate,
    /// Out of order or CRC-dirty: discard and ask the sender to rewind
    /// to the carried sequence number.
    Nak(u64),
}

/// Receiver half of the link-level retry window.
///
/// Sits conceptually between the wire (after fault injection) and the
/// switch ingress: checks each frame's header CRC and sequencing, and
/// only in-order clean frames reach the switch. The header CRC is
/// whatever word-fold the harness computes over the frame
/// (`rtl::integrity_checksum` in the campaigns).
#[derive(Debug, Clone)]
pub struct RetryReceiver {
    expect: u64,
    /// Frames delivered to the switch.
    pub accepted: u64,
    /// NAKs issued.
    pub naks: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
}

impl Default for RetryReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl RetryReceiver {
    /// A receiver expecting sequence 0.
    pub fn new() -> Self {
        RetryReceiver {
            expect: 0,
            accepted: 0,
            naks: 0,
            duplicates: 0,
        }
    }

    /// Judge one received frame: `seq` from the side-band, `crc_ok` from
    /// the harness's CRC comparison (false when the wire mangled or
    /// truncated the frame).
    pub fn receive(&mut self, seq: u64, crc_ok: bool) -> RxVerdict {
        if seq < self.expect {
            self.duplicates += 1;
            return RxVerdict::Duplicate;
        }
        if seq != self.expect || !crc_ok {
            self.naks += 1;
            return RxVerdict::Nak(self.expect);
        }
        self.expect += 1;
        self.accepted += 1;
        RxVerdict::Accept
    }

    /// A frame that never arrived at all (dropped on the wire): the
    /// harness detects the gap when the *next* frame shows up, but an
    /// end-of-burst drop needs an explicit timeout nudge. Returns the
    /// NAK to forward to the sender.
    pub fn timeout(&mut self) -> RxVerdict {
        self.naks += 1;
        RxVerdict::Nak(self.expect)
    }

    /// The sender abandoned `seq` (replay bound hit): skip past it so the
    /// link can make progress. No-op unless `seq` is the expected frame.
    pub fn skip(&mut self, seq: u64) {
        if seq == self.expect {
            self.expect += 1;
        }
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_merge_and_measure() {
        let mut w = RecoveryWindows::new();
        assert!(w.mean_len().is_none());
        w.open(100, 10); // [100,110]
        w.open(105, 10); // extends to [100,115]
        assert_eq!(w.count(), 1);
        assert!(w.active(115) && !w.active(116));
        w.open(200, 4); // [200,204]
        assert_eq!(w.count(), 2);
        assert!(w.contains(103) && w.contains(204) && !w.contains(150));
        assert_eq!(w.total_cycles(), 16 + 5);
        assert!((w.mean_len().unwrap() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn clean_link_needs_no_replay() {
        let cfg = RetryConfig::default();
        let mut tx = RetrySender::new(cfg);
        let mut rx = RetryReceiver::new();
        for i in 0..20u64 {
            assert!(tx.can_send());
            let seq = tx.send(vec![i]);
            assert_eq!(rx.receive(seq, true), RxVerdict::Accept);
            tx.ack(seq);
        }
        assert_eq!(tx.retries, 0);
        assert_eq!(rx.accepted, 20);
        assert_eq!(tx.outstanding(), 0);
    }

    #[test]
    fn corrupt_frame_is_replayed_go_back_n() {
        let mut tx = RetrySender::new(RetryConfig::default());
        let mut rx = RetryReceiver::new();
        // Send 0,1,2; frame 1 arrives corrupt, 2 is then out of order.
        let s0 = tx.send(vec![0]);
        assert_eq!(rx.receive(s0, true), RxVerdict::Accept);
        let s1 = tx.send(vec![1]);
        let s2 = tx.send(vec![2]);
        assert_eq!(rx.receive(s1, false), RxVerdict::Nak(1));
        assert_eq!(rx.receive(s2, true), RxVerdict::Nak(1));
        tx.nak(1);
        // Replay resends 1 then 2, both clean this time.
        let mut delivered = Vec::new();
        while let Some((seq, words)) = tx.next_replay() {
            if rx.receive(seq, true) == RxVerdict::Accept {
                delivered.push(words[0]);
                tx.ack(seq);
            }
        }
        assert_eq!(delivered, vec![1, 2]);
        assert_eq!(tx.retries, 2);
        assert_eq!(rx.accepted, 3);
        assert!(tx.can_send());
    }

    #[test]
    fn replay_overshoot_is_discarded_as_duplicate() {
        let mut tx = RetrySender::new(RetryConfig::default());
        let mut rx = RetryReceiver::new();
        let s0 = tx.send(vec![0]);
        // Frame 0 was accepted, but the ACK raced the NAK for frame 1.
        assert_eq!(rx.receive(s0, true), RxVerdict::Accept);
        let s1 = tx.send(vec![1]);
        assert_eq!(rx.receive(s1, false), RxVerdict::Nak(1));
        tx.nak(0); // stale NAK: rewinds to 0
        let (seq, _) = tx.next_replay().unwrap();
        assert_eq!(seq, 0);
        assert_eq!(rx.receive(seq, true), RxVerdict::Duplicate);
        let (seq, _) = tx.next_replay().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(rx.receive(seq, true), RxVerdict::Accept);
    }

    #[test]
    fn replay_bound_abandons_a_dead_frame() {
        let cfg = RetryConfig {
            window: 4,
            max_replays: 2,
        };
        let mut tx = RetrySender::new(cfg);
        let mut rx = RetryReceiver::new();
        let s0 = tx.send(vec![7]);
        // The wire eats frame 0 every time.
        assert_eq!(rx.receive(s0, false), RxVerdict::Nak(0));
        for _ in 0..cfg.max_replays {
            tx.nak(0);
            let (seq, _) = tx.next_replay().unwrap();
            assert_eq!(rx.receive(seq, false), RxVerdict::Nak(0));
        }
        tx.nak(0);
        assert_eq!(tx.give_ups, 1, "frame abandoned after the bound");
        assert_eq!(tx.outstanding(), 0);
        rx.skip(0);
        // The link makes progress again.
        let s1 = tx.send(vec![8]);
        assert_eq!(rx.receive(s1, true), RxVerdict::Accept);
    }

    #[test]
    fn window_backpressure() {
        let cfg = RetryConfig {
            window: 2,
            max_replays: 4,
        };
        let mut tx = RetrySender::new(cfg);
        tx.send(vec![0]);
        tx.send(vec![1]);
        assert!(!tx.can_send(), "window full");
        tx.ack(0);
        assert!(tx.can_send());
    }

    #[test]
    fn recovery_config_gates() {
        assert!(!RecoveryConfig::default().enabled());
        assert!(RecoveryConfig::ecc_only().enabled());
        assert!(!RecoveryConfig::ecc_only().failover_enabled());
        assert!(RecoveryConfig::full(2, 4).failover_enabled());
    }
}
