//! Word-level switch model over the interleaved (one-packet-per-bank)
//! shared buffer — the PRIZMA-style organization of §3.1/§5.3
//! (\[DeEI95\]) that `membank::interleaved` provides the memory for.
//!
//! Structure:
//!
//! * `M` single-ported banks, each holding exactly one packet
//!   ([`membank::interleaved::InterleavedMemory`]); a free bank is
//!   claimed at header arrival and the packet streams into it one word
//!   per cycle;
//! * per-output FIFO descriptor queues (service order is packet arrival
//!   order, as in the pipelined organization);
//! * **store-and-forward only**: the bank port that is busy accepting
//!   word `k` cannot concurrently source word `0` for the output link,
//!   so transmission starts at `a + S` at the earliest — the latency
//!   cost this organization pays that the pipelined memory's cut-through
//!   avoids (§3.3), which the conformance fuzzer's latency oracle relies
//!   on;
//! * a checksum **scrub at transmission start** (the per-bank ECC check):
//!   a stored-word upset is detected while the packet is still
//!   droppable, mirroring the pipelined model's read-initiation scrub
//!   and the wide model's fetch scrub.
//!
//! Unlike the single wide memory or the single wave-initiation port,
//! nothing serializes *between* banks here: all inputs can write and all
//! outputs can read in the same cycle, provided they touch distinct
//! banks (which one-packet-per-bank guarantees). The price, per §5.3, is
//! the `n×M` router/selector crossbars — `vlsimodel` does that
//! accounting; this model pins the behavior.

use crate::events::SwitchCounters;
use crate::policy::{AdmitDecision, PolicyEngine, PolicyKind, PolicyView, SharingPolicy};
use crate::recovery::{RecoveryConfig, RecoveryReport, RecoveryWindows};
use crate::rtl::integrity_checksum;
use membank::interleaved::{BankId, InterleavedMemory};
use membank::EccOutcome;
use simkernel::cell::Packet;
use simkernel::ids::Cycle;
use std::collections::VecDeque;
use telemetry::{
    DropReason, GaugeKind, ProbeEvent, ProbeHandle, RecoveryTag, SharedRecorder, TelemetryConfig,
};

/// Configuration of the interleaved-bank switch.
#[derive(Debug, Clone)]
pub struct InterleavedSwitchConfig {
    /// Inputs (= outputs).
    pub n: usize,
    /// Banks (= packet slots `M`).
    pub banks: usize,
    /// Checksum scrub at transmission start (detect-and-drop).
    pub scrub: bool,
    /// Fault-recovery machinery. One packet per bank makes this the most
    /// natural failover organization: a bank whose cumulative ECC
    /// corrections cross the threshold is retired from the allocation
    /// pool (draining its in-flight packet first) and a spare bank
    /// promoted in its place; with the reserve dry, capacity degrades by
    /// one bank per retirement.
    pub recovery: RecoveryConfig,
    /// Buffer-sharing policy governing bank admission/preemption
    /// (DESIGN.md §12). Decided at header time; queue lengths see only
    /// fully stored packets (descriptors are queued at tail time).
    pub policy: PolicyKind,
}

impl InterleavedSwitchConfig {
    /// Symmetric `n×n` switch with `banks` one-packet banks and the
    /// scrub on — the configuration the conformance fuzzer drives.
    pub fn symmetric(n: usize, banks: usize) -> Self {
        InterleavedSwitchConfig {
            n,
            banks,
            scrub: true,
            recovery: RecoveryConfig::default(),
            policy: PolicyKind::Static,
        }
    }

    /// The same configuration with the given recovery policy armed.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// The same configuration with the given buffer-sharing policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Packet size in words (kept equal to the pipelined quantum `2n` so
    /// the organizations are directly comparable).
    pub fn packet_words(&self) -> usize {
        2 * self.n
    }
}

/// A packet streaming into its bank from input `i`.
#[derive(Debug, Clone)]
struct Arriving {
    /// `None` when the packet was dropped at header (no free bank): the
    /// remaining words still occupy the link but go nowhere.
    bank: Option<BankId>,
    dst: usize,
    id: u64,
    birth: Cycle,
    /// Next word index.
    k: usize,
    /// Checksum accumulated as words stream in (stamped into the
    /// descriptor at tail time; the scrub recomputes it from the bank).
    sum: u64,
}

/// A fully stored packet waiting its turn on an output link.
#[derive(Debug, Clone, Copy)]
struct Stored {
    bank: BankId,
    id: u64,
    birth: Cycle,
    sum: u64,
    /// Earliest cycle the bank port is free for reads (tail write + 1).
    ready: Cycle,
}

/// The interleaved one-packet-per-bank shared-buffer switch.
#[derive(Debug)]
pub struct InterleavedSwitch {
    cfg: InterleavedSwitchConfig,
    mem: InterleavedMemory,
    arriving: Vec<Option<Arriving>>,
    queues: Vec<VecDeque<Stored>>,
    /// Per output: (bank, next word index, id, birth) of the packet in
    /// transmission.
    tx: Vec<Option<(BankId, usize, u64, Cycle)>>,
    cycle: Cycle,
    counters: SwitchCounters,
    probe: Option<ProbeHandle>,
    /// Last occupancy gauge emitted (probe attached only).
    last_occ: u64,
    /// Last per-output queue-depth gauges emitted (probe attached only).
    last_qdepth: Vec<u64>,
    /// Reusable per-cycle scratch (hot path: must not allocate).
    wire_out: Vec<Option<u64>>,
    scratch_freed: Vec<BankId>,
    /// Declared recovery windows (failover settle periods).
    recovery_windows: RecoveryWindows,
    /// The buffer-sharing policy (bank admission / preemption).
    policy: PolicyEngine,
    /// Cached `policy.is_static()` — the header path branches on this
    /// once per arrival to keep the static pool at its pre-policy cost.
    policy_static: bool,
}

impl InterleavedSwitch {
    /// Build the switch.
    pub fn new(cfg: InterleavedSwitchConfig) -> Self {
        assert!(cfg.n >= 1 && cfg.banks >= 1);
        let s = cfg.packet_words();
        let mut mem =
            InterleavedMemory::new_with_spares(cfg.banks, cfg.recovery.spare_banks, s, 64);
        if cfg.recovery.ecc {
            mem.enable_ecc();
        }
        InterleavedSwitch {
            mem,
            arriving: vec![None; cfg.n],
            queues: vec![VecDeque::new(); cfg.n],
            tx: vec![None; cfg.n],
            cycle: 0,
            counters: SwitchCounters::default(),
            probe: None,
            last_occ: 0,
            last_qdepth: vec![0; cfg.n],
            wire_out: vec![None; cfg.n],
            scratch_freed: Vec::with_capacity(cfg.n),
            recovery_windows: RecoveryWindows::default(),
            policy: cfg.policy.engine(cfg.n, cfg.packet_words()),
            policy_static: cfg.policy.is_static(),
            cfg,
        }
    }

    /// One non-static bank-admission decision. Queued packets are fully
    /// stored and not in transmission (transmission pops the queue), so
    /// any queue entry is evictable; push-out takes the rearmost entry
    /// of the victim queue and releases its bank.
    fn policy_admit(&mut self, dst: usize, c: Cycle) -> bool {
        let qlens: Vec<usize> = self.queues.iter().map(VecDeque::len).collect();
        let decision = self.policy.admit(&PolicyView {
            occupancy: self.mem.occupied_count(),
            capacity: self.mem.banks(),
            n_out: self.cfg.n,
            dst,
            qlens: &qlens,
        });
        match decision {
            AdmitDecision::Accept => true,
            AdmitDecision::Reject => false,
            AdmitDecision::Preempt { victim } => {
                // Rearmost *evictable* entry: a packet stored this very
                // cycle used its bank's write port this cycle, so the
                // single-ported bank cannot take the preemptor's header
                // word too. `ready <= c` means the last write retired in
                // a previous cycle and the port is idle.
                let slot = self.queues[victim].iter().rposition(|st| st.ready <= c);
                match slot {
                    Some(ix) => {
                        let st = self.queues[victim].remove(ix).expect("index in range");
                        self.mem.release(st.bank);
                        self.counters.policy_preempts += 1;
                        if let Some(p) = &self.probe {
                            p.emit(
                                c,
                                ProbeEvent::Drop {
                                    id: st.id,
                                    reason: DropReason::Preempted,
                                },
                            );
                        }
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Build a switch with telemetry per `tel`: returns the switch and
    /// the attached recorder (if `tel` enables one).
    pub fn with_telemetry(
        cfg: InterleavedSwitchConfig,
        tel: &TelemetryConfig,
    ) -> (Self, Option<SharedRecorder>) {
        let mut sw = Self::new(cfg);
        let rec = tel.recorder();
        if let Some(r) = &rec {
            sw.attach_probe(r.handle());
        }
        (sw, rec)
    }

    /// Attach a probe; every subsequent tick streams events into it.
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Aggregate counters.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Banks currently holding (or receiving) a packet.
    pub fn occupancy(&self) -> usize {
        self.mem.occupied_count()
    }

    /// True when nothing is buffered or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.mem.occupied_count() == 0
            && self.arriving.iter().all(Option::is_none)
            && self.tx.iter().all(Option::is_none)
            && self.queues.iter().all(VecDeque::is_empty)
    }

    /// ECC-scrub every word of bank `b`; retire the bank when its
    /// cumulative corrections cross the failover threshold.
    fn scrub_bank(&mut self, b: BankId, c: Cycle) {
        for k in 0..self.cfg.packet_words() {
            match self.mem.scrub_word(b, k) {
                EccOutcome::Clean => {}
                EccOutcome::Corrected { bit } => {
                    self.counters.ecc_corrected += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Recovery {
                                tag: RecoveryTag::EccCorrected,
                                index: b.0,
                                info: u64::from(bit),
                            },
                        );
                    }
                }
                EccOutcome::Uncorrectable => {
                    self.counters.ecc_uncorrectable += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Recovery {
                                tag: RecoveryTag::EccUncorrectable,
                                index: b.0,
                                info: k as u64,
                            },
                        );
                    }
                }
            }
        }
        if self.cfg.recovery.failover_enabled()
            && self.mem.bank_corrections(b) >= self.cfg.recovery.failover_threshold
        {
            let before = self.mem.failovers();
            let spare = self.mem.retire(b);
            if self.mem.failovers() > before {
                self.counters.bank_failovers += 1;
                let settle = if self.cfg.recovery.degrade_window > 0 {
                    self.cfg.recovery.degrade_window
                } else {
                    self.cfg.packet_words() as u64
                };
                self.recovery_windows.open(c, settle);
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Recovery {
                            tag: RecoveryTag::BankFailover,
                            index: b.0,
                            info: self.mem.spares_remaining() as u64,
                        },
                    );
                }
                if spare.is_none() {
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Recovery {
                                tag: RecoveryTag::DegradedEnter,
                                index: b.0,
                                info: self.mem.banks() as u64,
                            },
                        );
                    }
                }
            }
        }
    }

    /// True once retirements have outrun the spare pool and bank
    /// capacity dropped below the configured count.
    pub fn is_degraded(&self) -> bool {
        self.mem.banks() < self.cfg.banks
    }

    /// Spare banks still in reserve.
    pub fn spares_remaining(&self) -> usize {
        self.mem.spares_remaining()
    }

    /// Declared recovery windows (failover settle spans).
    pub fn recovery_windows(&self) -> &RecoveryWindows {
        &self.recovery_windows
    }

    /// Snapshot of the recovery ledger.
    pub fn recovery_report(&self) -> RecoveryReport {
        RecoveryReport {
            corrections: self.counters.ecc_corrected,
            uncorrectable: self.counters.ecc_uncorrectable,
            failovers: self.counters.bank_failovers,
            shed: self.counters.recovery_shed,
            retries: 0,
            retry_give_ups: 0,
            windows: self.recovery_windows.clone(),
        }
    }

    /// Fault injection (testbench only): flip the bits of `mask` in word
    /// `k` of bank `b`. Returns `true` when the bank currently holds a
    /// fully stored, not-yet-transmitting packet — i.e. the upset can
    /// reach the transmission-start scrub.
    pub fn inject_bank_fault(&mut self, b: BankId, k: usize, mask: u64) -> bool {
        self.mem.inject_fault(b, k, mask);
        self.queues.iter().any(|q| q.iter().any(|st| st.bank == b))
    }

    /// Advance one cycle: words in on every input link, words out on
    /// every output link. The returned slice borrows internal scratch
    /// and is valid until the next tick.
    pub fn tick(&mut self, wire_in: &[Option<u64>]) -> &[Option<u64>] {
        assert_eq!(wire_in.len(), self.cfg.n);
        let c = self.cycle;
        let s = self.cfg.packet_words();
        let n = self.cfg.n;
        self.mem.begin_cycle(c);

        // ------------------------------------------------------------------
        // 1. Output links: start and continue transmissions. Each output
        //    reads its own bank — banks never conflict across outputs.
        //    Banks vacated this cycle return to the free pool at end of
        //    tick: the tail read already used the bank's port, so a
        //    same-cycle reallocation could not legally write it.
        // ------------------------------------------------------------------
        let mut freed = std::mem::take(&mut self.scratch_freed);
        freed.clear();
        let mut wire_out = std::mem::take(&mut self.wire_out);
        wire_out.clear();
        wire_out.resize(n, None);
        for (j, out) in wire_out.iter_mut().enumerate() {
            if self.tx[j].is_none() {
                if let Some(&head) = self.queues[j].front() {
                    if head.ready <= c {
                        self.queues[j].pop_front();
                        // ECC pass over the bank before the checksum
                        // samples it: single-bit upsets are corrected in
                        // place, and a bank failing repeatedly is retired
                        // (it drains this packet first, then leaves the
                        // pool on release).
                        if self.cfg.recovery.ecc {
                            self.scrub_bank(head.bank, c);
                        }
                        let scrub_fail = self.cfg.scrub
                            && integrity_checksum((0..s).map(|k| self.mem.peek_word(head.bank, k)))
                                != head.sum;
                        if scrub_fail {
                            // Detect-and-drop: the initiation slot is
                            // spent; the bank is freed immediately.
                            self.counters.corrupt_drops += 1;
                            freed.push(head.bank);
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::Drop {
                                        id: head.id,
                                        reason: DropReason::Checksum,
                                    },
                                );
                            }
                        } else {
                            self.tx[j] = Some((head.bank, 0, head.id, head.birth));
                            if !self.policy_static {
                                // BShare queueing-delay signal:
                                // birth-to-transmission-start.
                                self.policy.on_read(j, c - head.birth);
                            }
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::ReadWave {
                                        output: j,
                                        addr: head.bank.0,
                                        fused: false,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            if let Some((bank, k, id, birth)) = self.tx[j].as_mut() {
                let w = self
                    .mem
                    .read_word(*bank, *k)
                    .expect("output owns its bank's port");
                *out = Some(w);
                *k += 1;
                let (done, b, id, birth) = (*k == s, *bank, *id, *birth);
                if done {
                    self.tx[j] = None;
                    freed.push(b);
                    self.counters.departed += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Departed {
                                output: j,
                                id,
                                birth,
                                latency: c - birth,
                            },
                        );
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // 2. Input links: header decode, bank allocation, word streaming.
        //    All packets are S words, so tail order equals header order —
        //    pushing descriptors at tail time preserves per-output FIFO.
        // ------------------------------------------------------------------
        for (i, w) in wire_in.iter().enumerate() {
            let Some(word) = w else {
                assert!(
                    self.arriving[i].is_none(),
                    "link protocol violation: idle inside a packet on input {i}"
                );
                continue;
            };
            if self.arriving[i].is_none() {
                let (dst, id) = Packet::decode_header(*word);
                assert!(dst < n, "bad destination {dst}");
                self.counters.arrived += 1;
                if let Some(p) = &self.probe {
                    p.emit(c, ProbeEvent::HeaderArrived { input: i, id, dst });
                }
                let refused = !self.policy_static && !self.policy_admit(dst, c);
                let bank = if refused { None } else { self.mem.allocate() };
                if refused {
                    self.counters.policy_drops += 1;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Drop {
                                id,
                                reason: DropReason::AdmissionPolicy,
                            },
                        );
                    }
                } else {
                    match bank {
                        Some(b) => {
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::WriteWave {
                                        input: i,
                                        addr: b.0,
                                    },
                                );
                            }
                        }
                        None => {
                            self.counters.dropped_buffer_full += 1;
                            if let Some(p) = &self.probe {
                                p.emit(
                                    c,
                                    ProbeEvent::Drop {
                                        id,
                                        reason: DropReason::BufferFull,
                                    },
                                );
                            }
                        }
                    }
                }
                self.arriving[i] = Some(Arriving {
                    bank,
                    dst,
                    id,
                    birth: c,
                    k: 0,
                    sum: 0,
                });
            }
            let ar = self.arriving[i].as_mut().expect("header just decoded");
            if let Some(bank) = ar.bank {
                self.mem
                    .write_word(bank, ar.k, *word)
                    .expect("input owns its bank's port");
                ar.sum = ar.sum.rotate_left(1) ^ *word;
            }
            ar.k += 1;
            if ar.k == s {
                let ar = self.arriving[i].take().expect("tail of a live packet");
                if let Some(bank) = ar.bank {
                    self.queues[ar.dst].push_back(Stored {
                        bank,
                        id: ar.id,
                        birth: ar.birth,
                        sum: ar.sum,
                        ready: c + 1,
                    });
                }
            }
        }

        for &b in &freed {
            self.mem.release(b);
        }
        self.scratch_freed = freed;

        if self.probe.is_some() {
            let occ = self.mem.occupied_count() as u64;
            if occ != self.last_occ {
                self.last_occ = occ;
                if let Some(p) = &self.probe {
                    p.emit(
                        c,
                        ProbeEvent::Gauge {
                            gauge: GaugeKind::Occupancy,
                            index: 0,
                            value: occ,
                        },
                    );
                }
            }
            for j in 0..n {
                let depth = self.queues[j].len() as u64;
                if depth != self.last_qdepth[j] {
                    self.last_qdepth[j] = depth;
                    if let Some(p) = &self.probe {
                        p.emit(
                            c,
                            ProbeEvent::Gauge {
                                gauge: GaugeKind::QueueDepth,
                                index: j,
                                value: depth,
                            },
                        );
                    }
                }
            }
        }

        self.cycle = c + 1;
        self.wire_out = wire_out;
        &self.wire_out
    }
}

impl simkernel::Horizon for InterleavedSwitch {
    fn now(&self) -> Cycle {
        self.cycle
    }

    /// Under idle input the only future event is a queued packet's bank
    /// port becoming readable (`Stored::ready`); active transmissions
    /// and mid-stream arrivals touch state every cycle and force dense
    /// stepping.
    fn next_event(&self) -> Option<Cycle> {
        if self.is_quiescent() {
            return None;
        }
        if self.tx.iter().any(Option::is_some) || self.arriving.iter().any(Option::is_some) {
            return Some(self.cycle);
        }
        self.queues
            .iter()
            .filter_map(|q| q.front().map(|head| head.ready.max(self.cycle)))
            .min()
            // Not quiescent yet nothing queued, transmitting, or
            // arriving: unaccounted activity — conservative dense tick.
            .or(Some(self.cycle))
    }

    fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.cycle, "jump_to moves time forward only");
        for w in &mut self.wire_out {
            *w = None;
        }
        self.cycle = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::OutputCollector;

    fn run_schedule(
        cfg: InterleavedSwitchConfig,
        packets: &[(usize, Packet)],
        extra: usize,
    ) -> (Vec<crate::rtl::DeliveredPacket>, InterleavedSwitch) {
        let s = cfg.packet_words();
        let n = cfg.n;
        let mut sw = InterleavedSwitch::new(cfg);
        let mut col = OutputCollector::new(n, s);
        let horizon = packets
            .iter()
            .map(|(start, _)| start + s)
            .max()
            .unwrap_or(0)
            + extra;
        for t in 0..horizon {
            let mut wire = vec![None; n];
            for (start, p) in packets {
                if t >= *start && t < start + s {
                    let i = p.src.index();
                    assert!(wire[i].is_none(), "two packets on input {i}");
                    wire[i] = Some(p.words[t - start]);
                }
            }
            let now = sw.now();
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        (col.take(), sw)
    }

    #[test]
    fn store_and_forward_timing() {
        // Header at 0, tail written at S-1, transmission from S at the
        // earliest: the latency this organization pays for its
        // single-ported one-packet banks (no cut-through possible).
        let cfg = InterleavedSwitchConfig::symmetric(2, 8);
        let s = cfg.packet_words();
        let p = Packet::synth(1, 0, 1, s, 0);
        let (pkts, sw) = run_schedule(cfg, &[(0, p)], 30);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].first_cycle, s as u64, "first word at a + S");
        assert!(pkts[0].verify_payload());
        assert_eq!(sw.counters().departed, 1);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn same_output_service_is_fifo() {
        let cfg = InterleavedSwitchConfig::symmetric(2, 8);
        let s = cfg.packet_words();
        let a = Packet::synth(1, 0, 0, s, 0);
        let b = Packet::synth(2, 1, 0, s, 0);
        let c = Packet::synth(3, 0, 0, s, 0);
        let (pkts, _) = run_schedule(cfg, &[(0, a), (1, b), (s, c)], 60);
        assert_eq!(pkts.len(), 3);
        let ids: Vec<u64> = pkts
            .iter()
            .filter(|p| p.output.index() == 0)
            .map(|p| p.id)
            .collect();
        assert_eq!(ids, vec![1, 2, 3], "arrival order preserved");
        // Transmissions on one link must not overlap.
        assert!(pkts[1].first_cycle > pkts[0].last_cycle);
    }

    #[test]
    fn capacity_is_bank_count() {
        // 2 banks, 3 simultaneous arrivals: exactly one is dropped at
        // header time (no free bank), the others deliver.
        let cfg = InterleavedSwitchConfig::symmetric(4, 2);
        let s = cfg.packet_words();
        let pkts: Vec<(usize, Packet)> = (0..3)
            .map(|i| (0usize, Packet::synth(i as u64 + 1, i, 3, s, 0)))
            .collect();
        let (delivered, sw) = run_schedule(cfg, &pkts, 80);
        assert_eq!(sw.counters().dropped_buffer_full, 1);
        assert_eq!(delivered.len(), 2);
        assert!(sw.is_quiescent());
    }

    #[test]
    fn stored_upset_caught_by_scrub() {
        let cfg = InterleavedSwitchConfig::symmetric(2, 4);
        let s = cfg.packet_words();
        let mut sw = InterleavedSwitch::new(cfg);
        let mut col = OutputCollector::new(2, s);
        let p = Packet::synth(5, 0, 1, s, 0);
        for k in 0..s {
            let now = sw.now();
            let out = sw.tick(&[Some(p.words[k]), None]);
            col.observe(now, out);
        }
        // Fully stored, not yet transmitting: flip a bit in every bank;
        // exactly one holds the live packet.
        let live: Vec<usize> = (0..4)
            .filter(|&b| sw.inject_bank_fault(BankId(b), 2, 1))
            .collect();
        assert_eq!(live.len(), 1, "one bank holds the packet");
        simkernel::run_until_quiescent(100, "interleaved scrub drain", |_| {
            if sw.is_quiescent() {
                return true;
            }
            let now = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(now, out);
            false
        })
        .expect("drain hung");
        assert!(col.take().is_empty(), "corrupted packet must not deliver");
        assert_eq!(sw.counters().corrupt_drops, 1);
        assert_eq!(sw.occupancy(), 0, "condemned bank freed");
    }

    /// Store one packet, upset its live bank, drain; returns delivered
    /// packets and the drained switch.
    fn run_one_with_upset(
        cfg: InterleavedSwitchConfig,
    ) -> (Vec<crate::rtl::DeliveredPacket>, InterleavedSwitch) {
        let s = cfg.packet_words();
        let n = cfg.n;
        let total = cfg.banks + cfg.recovery.spare_banks;
        let mut sw = InterleavedSwitch::new(cfg);
        let mut col = OutputCollector::new(n, s);
        let p = Packet::synth(5, 0, 1, s, 0);
        for k in 0..s {
            let now = sw.now();
            let out = sw.tick(&[Some(p.words[k]), None]);
            col.observe(now, out);
        }
        let live = (0..total)
            .filter(|&b| sw.inject_bank_fault(BankId(b), 2, 1))
            .count();
        assert_eq!(live, 1, "one bank holds the packet");
        simkernel::run_until_quiescent(100, "ecc drain", |_| {
            if sw.is_quiescent() {
                return true;
            }
            let now = sw.now();
            let out = sw.tick(&[None, None]);
            col.observe(now, out);
            false
        })
        .expect("drain hung");
        (col.take(), sw)
    }

    #[test]
    fn ecc_corrects_bank_upset_and_delivers() {
        // Same strike as `stored_upset_caught_by_scrub`, but with ECC
        // armed the transmission-start scrub repairs the bit and the
        // packet delivers intact.
        let cfg =
            InterleavedSwitchConfig::symmetric(2, 4).with_recovery(RecoveryConfig::ecc_only());
        let (pkts, sw) = run_one_with_upset(cfg);
        assert_eq!(pkts.len(), 1, "corrected packet delivers");
        assert!(pkts[0].verify_payload());
        assert_eq!(sw.counters().corrupt_drops, 0);
        assert_eq!(sw.counters().ecc_corrected, 1);
        assert!(!sw.is_degraded());
    }

    #[test]
    fn repeated_corrections_retire_the_bank_spare_first() {
        // Threshold 1: the first correction retires the struck bank. The
        // retired bank drains its packet, then leaves the pool; the
        // spare keeps capacity whole.
        let cfg =
            InterleavedSwitchConfig::symmetric(2, 4).with_recovery(RecoveryConfig::full(1, 1));
        let (pkts, sw) = run_one_with_upset(cfg);
        assert_eq!(pkts.len(), 1, "retiring bank still drains its packet");
        assert_eq!(sw.counters().bank_failovers, 1);
        assert_eq!(sw.spares_remaining(), 0, "spare promoted into service");
        assert!(!sw.is_degraded(), "spare kept capacity whole");
        assert_eq!(sw.recovery_windows().count(), 1, "one settle window");
        assert!(sw.is_quiescent());

        // No reserve: the same strike shrinks capacity by one bank.
        let cfg =
            InterleavedSwitchConfig::symmetric(2, 4).with_recovery(RecoveryConfig::full(0, 1));
        let (_, sw) = run_one_with_upset(cfg);
        assert_eq!(sw.counters().bank_failovers, 1);
        assert!(sw.is_degraded(), "no spare: capacity shrinks");
        assert!(sw.is_quiescent());
    }

    #[test]
    fn conservation_under_random_traffic() {
        use simkernel::SplitMix64;
        let cfg = InterleavedSwitchConfig::symmetric(4, 16);
        let s = cfg.packet_words();
        let n = cfg.n;
        let mut sw = InterleavedSwitch::new(cfg);
        let mut col = OutputCollector::new(n, s);
        let mut rng = SplitMix64::new(17);
        let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
        let mut next_id = 1u64;
        for _ in 0..20_000u64 {
            let now = sw.now();
            let mut wire = vec![None; n];
            for i in 0..n {
                if current[i].is_none() && rng.chance(0.5) {
                    let p = Packet::synth(next_id, i, rng.below_usize(n), s, now);
                    next_id += 1;
                    current[i] = Some((p, 0));
                }
                if let Some((p, k)) = current[i].as_mut() {
                    wire[i] = Some(p.words[*k]);
                    *k += 1;
                    if *k == s {
                        current[i] = None;
                    }
                }
            }
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        simkernel::run_until_quiescent(5_000, "interleaved random-traffic drain", |_| {
            if sw.is_quiescent() {
                return true;
            }
            let now = sw.now();
            let mut wire = vec![None; n];
            for i in 0..n {
                if let Some((p, k)) = current[i].as_mut() {
                    wire[i] = Some(p.words[*k]);
                    *k += 1;
                    if *k == s {
                        current[i] = None;
                    }
                }
            }
            let out = sw.tick(&wire);
            col.observe(now, out);
            false
        })
        .expect("failed to drain");
        let pkts = col.take();
        let ctr = sw.counters();
        assert!(pkts.iter().all(|p| p.verify_payload()));
        assert_eq!(
            ctr.arrived,
            pkts.len() as u64 + ctr.dropped_buffer_full,
            "conservation violated"
        );
        assert!(pkts.len() > 3_000);
    }
}
