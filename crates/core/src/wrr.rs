//! Weighted round-robin cell multiplexing (\[KaSC91\]).
//!
//! The paper's predecessor design — "Weighted Round-Robin Cell
//! Multiplexing in a General-Purpose ATM Switch Chip" — scheduled each
//! outgoing link among its flows in proportion to configured weights;
//! the Telegraphos outgoing-link blocks (fig. 6: "the list of ready to
//! depart packets") are the descendants of that machinery. This module
//! provides the per-output scheduler as a reusable component: a
//! deficit-style weighted round robin over per-flow FIFO queues, one
//! dequeue per slot (the link transmits one cell per slot).
//!
//! Guarantees (tested):
//! * **work conservation** — the link never idles while any flow is
//!   backlogged;
//! * **proportional sharing** — continuously backlogged flows receive
//!   service proportional to their weights (within one round);
//! * **per-flow FIFO** order.

use std::collections::VecDeque;

/// One flow's state.
#[derive(Debug, Clone)]
struct Flow<T> {
    weight: u32,
    deficit: u32,
    queue: VecDeque<T>,
}

/// A weighted round-robin multiplexer over `flows` FIFO queues.
///
/// ```
/// use switch_core::wrr::WrrMux;
///
/// let mut mux: WrrMux<&str> = WrrMux::new(&[2, 1]);
/// mux.enqueue(0, "a1");
/// mux.enqueue(0, "a2");
/// mux.enqueue(1, "b1");
/// // Flow 0 (weight 2) sends two cells per round, flow 1 one.
/// assert_eq!(mux.dequeue(), Some((0, "a1")));
/// assert_eq!(mux.dequeue(), Some((0, "a2")));
/// assert_eq!(mux.dequeue(), Some((1, "b1")));
/// ```
#[derive(Debug, Clone)]
pub struct WrrMux<T> {
    flows: Vec<Flow<T>>,
    /// Round-robin scan position.
    cursor: usize,
}

impl<T> WrrMux<T> {
    /// A multiplexer with the given per-flow weights (each ≥ 1).
    pub fn new(weights: &[u32]) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w >= 1), "weights must be ≥ 1");
        WrrMux {
            flows: weights
                .iter()
                .map(|&w| Flow {
                    weight: w,
                    deficit: 0,
                    queue: VecDeque::new(),
                })
                .collect(),
            cursor: 0,
        }
    }

    /// Number of flows.
    pub fn flows(&self) -> usize {
        self.flows.len()
    }

    /// Change a flow's weight (takes effect from its next round).
    pub fn set_weight(&mut self, flow: usize, weight: u32) {
        assert!(weight >= 1);
        self.flows[flow].weight = weight;
    }

    /// Enqueue a cell on a flow.
    pub fn enqueue(&mut self, flow: usize, item: T) {
        self.flows[flow].queue.push_back(item);
    }

    /// Cells queued on one flow.
    pub fn queue_len(&self, flow: usize) -> usize {
        self.flows[flow].queue.len()
    }

    /// Total cells queued.
    pub fn backlog(&self) -> usize {
        self.flows.iter().map(|f| f.queue.len()).sum()
    }

    /// Dequeue the next cell for transmission (call once per slot).
    ///
    /// Deficit round robin with cell-granularity quanta: the cursor flow
    /// spends one unit of deficit per cell; when its deficit is exhausted
    /// (or its queue empties) the cursor advances and the next flow is
    /// recharged by its weight.
    pub fn dequeue(&mut self) -> Option<(usize, T)> {
        if self.backlog() == 0 {
            return None;
        }
        let n = self.flows.len();
        // At most one full sweep: some flow is backlogged, so we find it.
        for _ in 0..=n {
            let i = self.cursor;
            let f = &mut self.flows[i];
            if f.queue.is_empty() {
                f.deficit = 0; // empty flows don't accumulate credit
                self.cursor = (i + 1) % n;
                continue;
            }
            if f.deficit == 0 {
                f.deficit = f.weight;
            }
            f.deficit -= 1;
            let item = f.queue.pop_front().expect("non-empty");
            if f.deficit == 0 || f.queue.is_empty() {
                if f.queue.is_empty() {
                    f.deficit = 0;
                }
                self.cursor = (i + 1) % n;
            }
            return Some((i, item));
        }
        unreachable!("backlogged mux failed to find a flow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_conserving() {
        let mut m: WrrMux<u32> = WrrMux::new(&[1, 1]);
        m.enqueue(1, 10);
        // Flow 0 empty must not block the link.
        assert_eq!(m.dequeue(), Some((1, 10)));
        assert_eq!(m.dequeue(), None);
    }

    #[test]
    fn proportional_under_backlog() {
        let weights = [1u32, 2, 3];
        let mut m: WrrMux<u64> = WrrMux::new(&weights);
        // Keep all flows continuously backlogged and count service.
        let mut served = [0u64; 3];
        let mut next = 0u64;
        for f in 0..3 {
            for _ in 0..10 {
                m.enqueue(f, next);
                next += 1;
            }
        }
        for _ in 0..1200 {
            // top up
            for f in 0..3 {
                if m.queue_len(f) < 5 {
                    m.enqueue(f, next);
                    next += 1;
                }
            }
            let (f, _) = m.dequeue().expect("backlogged");
            served[f] += 1;
        }
        let total: u64 = served.iter().sum();
        for f in 0..3 {
            let share = served[f] as f64 / total as f64;
            let expect = weights[f] as f64 / 6.0;
            assert!(
                (share - expect).abs() < 0.02,
                "flow {f}: share {share:.3} vs weight share {expect:.3}"
            );
        }
    }

    #[test]
    fn per_flow_fifo() {
        let mut m: WrrMux<u32> = WrrMux::new(&[1, 4]);
        for v in 0..5 {
            m.enqueue(1, v);
        }
        let mut got = Vec::new();
        while let Some((f, v)) = m.dequeue() {
            assert_eq!(f, 1);
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weight_change_takes_effect() {
        let mut m: WrrMux<u32> = WrrMux::new(&[1, 1]);
        let mut served = [0u32; 2];
        let fill = |m: &mut WrrMux<u32>| {
            for f in 0..2 {
                while m.queue_len(f) < 4 {
                    m.enqueue(f, 0);
                }
            }
        };
        fill(&mut m);
        for _ in 0..100 {
            fill(&mut m);
            let (f, _) = m.dequeue().expect("backlogged");
            served[f] += 1;
        }
        assert!(
            (served[0] as i32 - served[1] as i32).abs() <= 2,
            "{served:?}"
        );
        // Now triple flow 1's weight.
        m.set_weight(1, 3);
        let mut served2 = [0u32; 2];
        for _ in 0..400 {
            fill(&mut m);
            let (f, _) = m.dequeue().expect("backlogged");
            served2[f] += 1;
        }
        let ratio = served2[1] as f64 / served2[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "post-change ratio {ratio}");
    }

    #[test]
    fn empty_flow_accumulates_no_credit() {
        // A flow idle for a long time must not burst beyond its weight
        // when it returns (the "no banked credit" property of DRR with
        // reset-on-empty).
        let mut m: WrrMux<u32> = WrrMux::new(&[4, 4]);
        for _ in 0..100 {
            m.enqueue(0, 1);
        }
        // Serve only flow 0 for a while (flow 1 idle).
        for _ in 0..50 {
            let _ = m.dequeue();
        }
        // Flow 1 wakes with a big backlog; in the next 8 slots it may get
        // at most its weight per round, i.e. no more than ~weight+... of
        // the first 8 services.
        for _ in 0..100 {
            m.enqueue(1, 2);
        }
        let mut f1_in_first_8 = 0;
        for _ in 0..8 {
            if let Some((1, _)) = m.dequeue() {
                f1_in_first_8 += 1;
            }
        }
        assert!(
            f1_in_first_8 <= 4,
            "flow 1 must not burst past its weight: {f1_in_first_8}"
        );
    }

    #[test]
    #[should_panic(expected = "weights must be ≥ 1")]
    fn zero_weight_rejected() {
        let _: WrrMux<u32> = WrrMux::new(&[1, 0]);
    }
}
