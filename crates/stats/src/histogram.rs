//! Integer histogram with exact percentiles.
//!
//! Latencies in a cycle-accurate simulator are small integers, so an exact
//! dense histogram (growing `Vec<u64>` of counts) is both simpler and more
//! precise than approximate quantile sketches. Values beyond a configurable
//! cap are clamped into an overflow bucket and counted.

/// Dense histogram over non-negative integer values.
///
/// ```
/// use stats::Histogram;
///
/// let mut h = Histogram::new(1000);
/// for v in 1..=100 {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(50.0), Some(50));
/// assert_eq!(h.mean(), 50.5);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    cap: usize,
    overflow: u64,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// A histogram tracking exact counts for values in `0..cap`; larger
    /// values land in a single overflow bucket (still contributing to mean
    /// via their true value).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Histogram {
            counts: Vec::new(),
            cap,
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Record a value.
    pub fn record(&mut self, v: u64) {
        self.total += 1;
        self.sum += v as u128;
        if (v as usize) < self.cap {
            let idx = v as usize;
            if idx >= self.counts.len() {
                self.counts.resize(idx + 1, 0);
            }
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of values that exceeded the cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded values (exact; overflowed values included).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact percentile `q ∈ [0,100]` of the recorded distribution; values
    /// in the overflow bucket are reported as `cap` (a lower bound).
    /// Returns `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        // Rank of the q-th percentile, 1-based, nearest-rank definition.
        let rank = ((q / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(v as u64);
            }
        }
        Some(self.cap as u64)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Largest recorded non-overflow value, if any.
    pub fn max_tracked(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(|v| v as u64)
    }

    /// Iterate `(value, count)` over non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }

    /// Merge another histogram (must have the same cap).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.cap, other.cap, "histogram cap mismatch");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut h = Histogram::new(1000);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-12);
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(h.percentile(1.0), Some(1));
    }

    #[test]
    fn empty_has_no_percentiles() {
        let h = Histogram::new(10);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn overflow_counted_and_clamped() {
        let mut h = Histogram::new(10);
        h.record(5);
        h.record(500);
        assert_eq!(h.overflow(), 1);
        // Mean uses true values.
        assert!((h.mean() - 252.5).abs() < 1e-12);
        // Percentile clamps overflow to cap.
        assert_eq!(h.percentile(100.0), Some(10));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(100);
        let mut b = Histogram::new(100);
        a.record(1);
        b.record(2);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max_tracked(), Some(2));
    }

    #[test]
    fn single_value_percentiles() {
        let mut h = Histogram::new(100);
        h.record(7);
        for q in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(q), Some(7));
        }
    }

    #[test]
    fn buckets_iterates_nonzero() {
        let mut h = Histogram::new(100);
        h.record(3);
        h.record(3);
        h.record(8);
        let b: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(b, vec![(3, 2), (8, 1)]);
    }
}
