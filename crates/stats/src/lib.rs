//! # stats — measurement utilities for switch simulations
//!
//! Every experiment in the workspace reports one or more of: carried
//! throughput, packet/cell latency, and loss probability. This crate holds
//! the collectors those experiments share:
//!
//! * [`Welford`] — numerically stable online mean/variance;
//! * [`Histogram`] — integer-valued histogram with exact percentiles;
//! * [`LatencyStats`] — latency collector (mean, max, percentiles) with
//!   warmup filtering;
//! * [`ThroughputMeter`] / [`LossMeter`] — offered vs carried accounting;
//! * [`BatchMeans`] — confidence intervals for steady-state means from a
//!   single run (the standard batch-means method);
//! * [`saturation_search`] — bisection for the saturation load of a switch,
//!   the quantity behind the paper's "input queueing saturates at ≈ 58.6 %"
//!   claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod histogram;
pub mod latency;
pub mod meters;
pub mod saturation;
pub mod welford;

pub use batch::BatchMeans;
pub use histogram::Histogram;
pub use latency::LatencyStats;
pub use meters::{LossMeter, ThroughputMeter};
pub use saturation::{saturation_search, SaturationResult};
pub use welford::Welford;
