//! Batch-means confidence intervals.
//!
//! The standard single-run method for steady-state simulation output
//! analysis: split the (post-warmup) observation stream into `k` equal
//! batches, treat batch means as approximately i.i.d. normal, and form a
//! Student-t confidence interval on the grand mean.

use crate::welford::Welford;

/// Accumulates observations into fixed-size batches and reports a
/// confidence interval over the batch means.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Collector with the given batch size (observations per batch).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batch_means: Vec::new(),
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (`None` if no batch completed).
    pub fn mean(&self) -> Option<f64> {
        if self.batch_means.is_empty() {
            return None;
        }
        Some(self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64)
    }

    /// 95 % confidence half-width over completed batch means (`None` with
    /// fewer than 2 batches).
    pub fn half_width_95(&self) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean()?;
        let var = self
            .batch_means
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        let t = t_975(k - 1);
        Some(t * (var / k as f64).sqrt())
    }

    /// `(mean, half_width)` if at least 2 batches completed.
    pub fn interval_95(&self) -> Option<(f64, f64)> {
        Some((self.mean()?, self.half_width_95()?))
    }
}

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom
/// (tabulated for small df, asymptotic 1.96 beyond).
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else if df <= 60 {
        2.000
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_complete_at_size() {
        let mut b = BatchMeans::new(10);
        for i in 0..35 {
            b.push(i as f64);
        }
        assert_eq!(b.batches(), 3);
        // Batch means: 4.5, 14.5, 24.5 → grand mean 14.5.
        assert!((b.mean().unwrap() - 14.5).abs() < 1e-12);
    }

    #[test]
    fn no_interval_below_two_batches() {
        let mut b = BatchMeans::new(100);
        for i in 0..150 {
            b.push(i as f64);
        }
        assert_eq!(b.batches(), 1);
        assert!(b.half_width_95().is_none());
    }

    #[test]
    fn constant_stream_zero_width() {
        let mut b = BatchMeans::new(5);
        for _ in 0..50 {
            b.push(3.0);
        }
        let (m, hw) = b.interval_95().unwrap();
        assert_eq!(m, 3.0);
        assert_eq!(hw, 0.0);
    }

    #[test]
    fn interval_covers_true_mean_for_iid_noise() {
        // Deterministic pseudo-noise around 10.0.
        let mut b = BatchMeans::new(50);
        let mut x = 1u64;
        for _ in 0..5000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            b.push(10.0 + (u - 0.5));
        }
        let (m, hw) = b.interval_95().unwrap();
        assert!((m - 10.0).abs() < hw + 0.05, "mean {m} hw {hw}");
    }

    #[test]
    fn t_table_sane() {
        assert!(t_975(1) > t_975(2));
        assert!((t_975(1000) - 1.96).abs() < 1e-9);
        assert_eq!(t_975(0), f64::INFINITY);
    }
}
