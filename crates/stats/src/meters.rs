//! Offered vs carried throughput and loss accounting.

/// Measures throughput of a switch: cells offered (arrivals), carried
/// (departures), and the utilization these imply per port.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    offered: u64,
    carried: u64,
    measured_slots: u64,
    ports: usize,
    warmup: u64,
}

impl ThroughputMeter {
    /// A meter for an `ports`-output switch; slots before `warmup` are not
    /// counted in the measurement window.
    pub fn new(ports: usize, warmup: u64) -> Self {
        ThroughputMeter {
            ports,
            warmup,
            ..Default::default()
        }
    }

    /// Note the passing of slot `now` (call once per slot).
    pub fn slot(&mut self, now: u64) {
        if now >= self.warmup {
            self.measured_slots += 1;
        }
    }

    /// Record `n` arrivals in slot `now`.
    pub fn arrivals(&mut self, now: u64, n: u64) {
        if now >= self.warmup {
            self.offered += n;
        }
    }

    /// Record `n` departures in slot `now`.
    pub fn departures(&mut self, now: u64, n: u64) {
        if now >= self.warmup {
            self.carried += n;
        }
    }

    /// Total cells offered in the window.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total cells carried in the window.
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Carried load per output port per slot (the paper's "link
    /// utilization"): `carried / (slots × ports)`.
    pub fn utilization(&self) -> f64 {
        if self.measured_slots == 0 || self.ports == 0 {
            0.0
        } else {
            self.carried as f64 / (self.measured_slots * self.ports as u64) as f64
        }
    }

    /// Offered load per input port per slot.
    pub fn offered_load(&self) -> f64 {
        if self.measured_slots == 0 || self.ports == 0 {
            0.0
        } else {
            self.offered as f64 / (self.measured_slots * self.ports as u64) as f64
        }
    }

    /// Slots in the measurement window so far.
    pub fn slots(&self) -> u64 {
        self.measured_slots
    }
}

/// Loss probability accounting: accepted vs dropped cells.
#[derive(Debug, Clone, Default)]
pub struct LossMeter {
    accepted: u64,
    dropped: u64,
    warmup: u64,
}

impl LossMeter {
    /// A loss meter ignoring events before `warmup`.
    pub fn new(warmup: u64) -> Self {
        LossMeter {
            warmup,
            ..Default::default()
        }
    }

    /// Record `n` cells accepted into the buffer in slot `now`.
    pub fn accept(&mut self, now: u64, n: u64) {
        if now >= self.warmup {
            self.accepted += n;
        }
    }

    /// Record `n` cells dropped (buffer full / knocked out) in slot `now`.
    pub fn drop(&mut self, now: u64, n: u64) {
        if now >= self.warmup {
            self.dropped += n;
        }
    }

    /// Cells accepted in the window.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Cells dropped in the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Loss probability `dropped / (accepted + dropped)`; 0 when no
    /// traffic was observed.
    pub fn loss_probability(&self) -> f64 {
        let total = self.accepted + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_counts_window_only() {
        let mut m = ThroughputMeter::new(4, 10);
        for now in 0..20 {
            m.slot(now);
            m.arrivals(now, 4);
            m.departures(now, 2);
        }
        assert_eq!(m.slots(), 10);
        assert_eq!(m.offered(), 40);
        assert_eq!(m.carried(), 20);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
        assert!((m.offered_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = ThroughputMeter::new(4, 0);
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.offered_load(), 0.0);
    }

    #[test]
    fn loss_probability() {
        let mut l = LossMeter::new(0);
        l.accept(1, 999);
        l.drop(1, 1);
        assert!((l.loss_probability() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn loss_warmup_ignored() {
        let mut l = LossMeter::new(5);
        l.drop(0, 100);
        l.accept(10, 10);
        assert_eq!(l.dropped(), 0);
        assert_eq!(l.loss_probability(), 0.0);
    }

    #[test]
    fn no_traffic_no_loss() {
        let l = LossMeter::new(0);
        assert_eq!(l.loss_probability(), 0.0);
    }
}
