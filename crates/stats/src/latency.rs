//! Latency collection with warmup filtering.

use crate::histogram::Histogram;
use crate::welford::Welford;

/// Collects per-packet latencies, ignoring packets born before the warmup
/// horizon so transient startup behavior does not bias steady-state means.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    warmup: u64,
    stats: Welford,
    hist: Histogram,
}

impl LatencyStats {
    /// Collector ignoring samples whose `birth < warmup`; latencies above
    /// `hist_cap` still count toward the mean but fall into the histogram
    /// overflow bucket.
    pub fn new(warmup: u64, hist_cap: usize) -> Self {
        LatencyStats {
            warmup,
            stats: Welford::new(),
            hist: Histogram::new(hist_cap),
        }
    }

    /// Record a departure: a packet born at `birth` completed at `now`.
    /// Returns `true` if the sample was accepted (past warmup).
    pub fn record(&mut self, birth: u64, now: u64) -> bool {
        if birth < self.warmup {
            return false;
        }
        let lat = now.saturating_sub(birth);
        self.stats.push(lat as f64);
        self.hist.record(lat);
        true
    }

    /// Number of accepted samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency of accepted samples.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.stats.stddev()
    }

    /// Exact percentile from the histogram.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.hist.percentile(q)
    }

    /// Largest accepted latency.
    pub fn max(&self) -> Option<f64> {
        self.stats.max()
    }

    /// Merge another collector (same warmup/cap assumed by construction).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.stats.merge(&other.stats);
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_filters() {
        let mut l = LatencyStats::new(100, 1000);
        assert!(!l.record(50, 60), "pre-warmup sample rejected");
        assert!(l.record(100, 110));
        assert_eq!(l.count(), 1);
        assert_eq!(l.mean(), 10.0);
    }

    #[test]
    fn percentiles_work() {
        let mut l = LatencyStats::new(0, 1000);
        for d in 0..100 {
            l.record(0, d);
        }
        assert_eq!(l.percentile(50.0), Some(49));
        assert_eq!(l.max(), Some(99.0));
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new(0, 100);
        let mut b = LatencyStats::new(0, 100);
        a.record(0, 10);
        b.record(0, 20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 15.0);
    }
}
