//! Saturation-point search.
//!
//! The saturation throughput of a switch is the largest offered load it can
//! carry without queues growing unboundedly. Empirically we detect
//! saturation as *carried < offered − tolerance* over a long measurement
//! window (an unstable switch cannot carry what is offered). A bisection
//! over offered load brackets the saturation point; this is how E1/E2
//! reproduce the 58.6 % (uniform iid input queueing) and ≈25 % (wormhole)
//! figures.

/// Result of a saturation search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationResult {
    /// Highest offered load that was still carried (stable).
    pub stable_load: f64,
    /// Lowest offered load observed unstable.
    pub unstable_load: f64,
    /// Number of simulation evaluations performed.
    pub evaluations: usize,
}

impl SaturationResult {
    /// Midpoint estimate of the saturation load.
    pub fn estimate(&self) -> f64 {
        0.5 * (self.stable_load + self.unstable_load)
    }
}

/// Bisect for the saturation load in `(lo, hi)`.
///
/// `carries(load)` must run the system at the given offered load and return
/// the *carried* load (per input, same units). The system is judged stable
/// at `load` when `carries(load) ≥ load − tol`.
///
/// Preconditions: the system must be stable at `lo` and unstable at `hi`
/// (checked; panics otherwise — a misconfigured experiment should fail
/// loudly, not return a plausible number).
pub fn saturation_search(
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    resolution: f64,
    mut carries: impl FnMut(f64) -> f64,
) -> SaturationResult {
    assert!(lo < hi && tol > 0.0 && resolution > 0.0);
    let mut evals = 0;
    let mut eval = |load: f64, evals: &mut usize| {
        *evals += 1;
        carries(load) >= load - tol
    };
    assert!(
        eval(lo, &mut evals),
        "system must be stable at the lower bracket {lo}"
    );
    assert!(
        !eval(hi, &mut evals),
        "system must be unstable at the upper bracket {hi}"
    );
    while hi - lo > resolution {
        let mid = 0.5 * (lo + hi);
        if eval(mid, &mut evals) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    SaturationResult {
        stable_load: lo,
        unstable_load: hi,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_known_threshold() {
        // A synthetic system that saturates at exactly 0.586.
        let sat = 0.586;
        let r = saturation_search(0.1, 0.99, 1e-6, 0.001, |load| load.min(sat));
        assert!(
            (r.estimate() - sat).abs() < 0.002,
            "estimate {}",
            r.estimate()
        );
        assert!(r.stable_load <= sat + 1e-9);
        assert!(r.unstable_load >= sat - 0.001);
    }

    #[test]
    fn evaluation_count_is_logarithmic() {
        let r = saturation_search(0.1, 0.9, 1e-6, 0.01, |load| load.min(0.5));
        // 2 bracket checks + ~log2(0.8/0.01) ≈ 7 bisections.
        assert!(r.evaluations <= 12, "{} evaluations", r.evaluations);
    }

    #[test]
    #[should_panic(expected = "stable at the lower bracket")]
    fn panics_if_lo_unstable() {
        saturation_search(0.5, 0.9, 1e-6, 0.01, |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "unstable at the upper bracket")]
    fn panics_if_hi_stable() {
        saturation_search(0.1, 0.9, 1e-6, 0.01, |load| load);
    }
}
