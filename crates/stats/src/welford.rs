//! Online mean and variance (Welford's algorithm).

/// Numerically stable streaming mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroish() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_none());
    }

    #[test]
    fn known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }
}
