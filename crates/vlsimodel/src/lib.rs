//! # vlsimodel — first-order silicon cost model for switch buffers
//!
//! Sections 4 and 5 of the paper argue in silicon area and wire delay:
//! SRAM megacell areas, peripheral datapath areas, routing, word-line RC,
//! and cross-organization area ratios. This crate is that arithmetic made
//! executable. It is a **first-order model, calibrated to the paper's own
//! reported data points** (the Telegraphos II floorplan, the Telegraphos
//! III peripheral area, the \[KaSC91\] wide-memory adjustment), and its
//! tests assert that the model reproduces every mm²/ns/ratio figure in the
//! paper within tolerance:
//!
//! * Telegraphos II (0.7 µm std-cell): 8 SRAM megacells ≈ 11 mm²,
//!   peripherals ≈ 15 mm², bus routing ≈ 5.5 mm², total ≈ 32 mm² (§4.2);
//! * Telegraphos III (1.0 µm full-custom): peripherals ≈ 9 mm², 16 ns
//!   worst-case cycle → 1 Gb/s per link at 16 wires/link (§4.4);
//! * standard-cell 4×4 equivalent ≈ 41 mm² (the paper's "4.5× smaller"),
//!   8×8 standard-cell ≈ 18× the full-custom area (§4.4);
//! * wide-memory peripherals at Telegraphos III parameters ≈ 13 mm², i.e.
//!   pipelined ≈ 30 % smaller (§5.2);
//! * PRIZMA crossbar cost `n×M` vs pipelined `n×2n` → 16× at
//!   `M = 256, 2n = 16`; shift-register bit 4× a 3T DRAM bit (§5.3);
//! * word-line RC: the pipelined organization's short word lines and
//!   decoded-address pipeline registers (2.3× smaller than a decoder) vs
//!   the wide memory's long lines (§4.3, fig. 7).
//!
//! Where the paper's figure is itself an estimate, the model documents the
//! calibration in the item's doc comment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod floorplan;
pub mod periph;
pub mod quantum;
pub mod rc;
pub mod sram;
pub mod tech;
pub mod telegraphos;

pub use compare::{prizma_crossbar_ratio, wide_vs_pipelined};
pub use floorplan::{telegraphos_ii_floorplan, FloorplanReport};
pub use periph::{peripheral_area_mm2, Organization, PeripheralBreakdown};
pub use quantum::{quantum_table, QuantumRow};
pub use rc::{decoder_vs_pipe_register, word_line_delay_ns, RcLine};
pub use sram::sram_macro_area_mm2;
pub use tech::{Style, Technology};
pub use telegraphos::{telegraphos_table, Prototype};
