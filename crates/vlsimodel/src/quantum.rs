//! The §3.5 packet-size-quantum arithmetic.
//!
//! "Consider a quantum as small as 32 to 64 bytes … this corresponds to
//! buffer widths of 256 to 1024 bits. With an (on-chip) memory cycle time
//! of 5 ns … the aggregate throughput of such a buffer is 50 to 200
//! Gbits/s (12 to 25 GBytes/s) — enough for 16 incoming and 16 outgoing
//! links near the Giga-Byte per second range, each."

/// One row of the quantum/throughput table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumRow {
    /// Packet-size quantum in bytes.
    pub quantum_bytes: u32,
    /// Buffer width in bits (= quantum × 8, or half of it with the §3.5
    /// dual-memory split).
    pub buffer_width_bits: u32,
    /// Memory cycle time, ns.
    pub cycle_ns: f64,
    /// Aggregate buffer throughput, Gb/s.
    pub aggregate_gbps: f64,
    /// Per-link throughput with 16+16 links, Gb/s.
    pub per_link_gbps: f64,
}

/// Build the §3.5 table for the given quanta and cycle time.
pub fn quantum_table(quanta_bytes: &[u32], cycle_ns: f64, links_per_side: u32) -> Vec<QuantumRow> {
    quanta_bytes
        .iter()
        .map(|&q| {
            let width = q * 8;
            let aggregate = width as f64 / cycle_ns; // bits per ns = Gb/s
            QuantumRow {
                quantum_bytes: q,
                buffer_width_bits: width,
                cycle_ns,
                aggregate_gbps: aggregate,
                per_link_gbps: aggregate / (2.0 * links_per_side as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_range_50_to_200_gbps() {
        let rows = quantum_table(&[32, 64, 128], 5.0, 16);
        assert_eq!(rows[0].buffer_width_bits, 256);
        assert_eq!(rows[2].buffer_width_bits, 1024);
        assert!((rows[0].aggregate_gbps - 51.2).abs() < 1e-9, "≈ 50 Gb/s");
        assert!((rows[2].aggregate_gbps - 204.8).abs() < 1e-9, "≈ 200 Gb/s");
    }

    #[test]
    fn per_link_near_gigabyte_range() {
        // 1024-bit buffer at 5 ns, 16+16 links → 6.4 Gb/s ≈ 0.8 GB/s per
        // link — "near the Giga-Byte per second range".
        let rows = quantum_table(&[128], 5.0, 16);
        let gbytes = rows[0].per_link_gbps / 8.0;
        assert!((0.5..1.2).contains(&gbytes), "{gbytes} GB/s");
    }

    #[test]
    fn atm_cell_fits_two_quanta_of_32() {
        // ATM cells are 53 bytes: with a 32-byte quantum a cell pads to
        // 64 bytes (2 quanta); the §3.5 half-size trick brings the
        // quantum down without widening the memory.
        let quantum = 32u32;
        let atm = 53u32;
        let padded = atm.div_ceil(quantum) * quantum;
        assert_eq!(padded, 64);
    }
}
