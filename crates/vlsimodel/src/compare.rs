//! The §5 comparisons: pipelined vs wide (§5.2) and vs PRIZMA (§5.3).

use crate::periph::{peripheral_area_mm2, Organization};
use crate::tech::Technology;

/// §5.2: peripheral area of the wide-memory organization vs the pipelined
/// one at the same geometry/technology. Returns `(wide_mm2,
/// pipelined_mm2, pipelined_savings_fraction)`.
///
/// The paper's data point: \[KaSC91\]'s wide-memory peripherals, adjusted
/// to Telegraphos III parameters, would be 13 mm² vs the 9 mm² built —
/// "pipelined memory has about 30 % smaller peripheral area".
pub fn wide_vs_pipelined(n: usize, w: u32, slots: usize, tech: &Technology) -> (f64, f64, f64) {
    let wide = peripheral_area_mm2(Organization::Wide, n, w, slots, tech);
    let pipe = peripheral_area_mm2(Organization::Pipelined, n, w, slots, tech);
    (wide, pipe, 1.0 - pipe / wide)
}

/// §5.3: cost ratio of the PRIZMA router/selector crossbars (`n × M`
/// each) to the pipelined organization's input/output datapath blocks
/// (`n × 2n` each), at equal word width.
///
/// For Telegraphos III (`2n = 16`, `M = 256`) this is 16×.
pub fn prizma_crossbar_ratio(n: usize, m_banks: usize) -> f64 {
    (m_banks as f64) / (2.0 * n as f64)
}

/// §5.3: relative storage-cell areas. One dynamic shift-register bit is
/// ≈ 4× one 3-transistor dynamic RAM bit — why shift-register banks don't
/// rescue the interleaved organization.
pub fn shift_register_vs_dram3t_bit() -> f64 {
    4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    #[test]
    fn wide_peripherals_about_13_mm2_pipelined_9() {
        let (wide, pipe, savings) =
            wide_vs_pipelined(8, 16, 256, &Technology::es2_100_full_custom());
        assert!((wide - 13.0).abs() / 13.0 < 0.08, "wide {wide} vs paper 13");
        assert!(
            (pipe - 9.0).abs() / 9.0 < 0.08,
            "pipelined {pipe} vs paper 9"
        );
        assert!(
            (0.25..=0.37).contains(&savings),
            "savings {savings} vs paper ≈ 0.30"
        );
    }

    #[test]
    fn prizma_ratio_is_16x_at_telegraphos_iii_geometry() {
        // §5.3: "in Telegraphos III, 2n = 16, while M = 256; thus, the
        // shared-buffer crossbars would cost 16 times more in the PRIZMA
        // architecture".
        assert!((prizma_crossbar_ratio(8, 256) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn prizma_ratio_shrinks_with_fewer_banks() {
        // The paper's caveat: "the PRIZMA crossbar cost could be reduced
        // by placing more than one packet per bank" — fewer banks, lower
        // ratio.
        assert!(prizma_crossbar_ratio(8, 64) < prizma_crossbar_ratio(8, 256));
        assert!((prizma_crossbar_ratio(8, 16) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shift_register_bit_factor() {
        assert_eq!(shift_register_vs_dram3t_bit(), 4.0);
    }
}
