//! Floorplan composition — figures 6, 8 and 9.

use crate::periph::{peripheral_area_mm2, Organization};
use crate::sram::sram_macro_area_mm2;
use crate::tech::Technology;

/// Area report for a shared-buffer switch floorplan (the fig. 6
/// accounting of §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloorplanReport {
    /// SRAM macro area, mm² (all stages).
    pub sram_mm2: f64,
    /// Peripheral datapath area, mm².
    pub peripheral_mm2: f64,
    /// Memory-bus routing area, mm².
    pub routing_mm2: f64,
}

impl FloorplanReport {
    /// Total shared-buffer area.
    pub fn total_mm2(&self) -> f64 {
        self.sram_mm2 + self.peripheral_mm2 + self.routing_mm2
    }
}

/// Routing-area estimate for the stage buses: `S` buses of `w` wires each
/// crossing the datapath, length proportional to the total bank span.
///
/// Calibrated to Telegraphos II's reported 5.5 mm²: `S·w = 128` wires at
/// 2.1 µm pitch crossing a ≈ 20 mm span → 0.2688 mm² per wire·cm; the
/// constant below folds the span.
pub fn routing_area_mm2(n: usize, w: u32, tech: &Technology) -> f64 {
    let s = 2 * n;
    let wires = (s as f64) * (w as f64);
    // The buses run the length of the bank row: ≈ 2.5 mm per stage in the
    // fig. 6 floorplan (eight 1.5 mm macros plus inter-macro channels,
    // folded into two rows).
    let span_um = 2.5e3 * s as f64;
    wires * tech.wire_pitch_um * span_um / 1e6
}

/// The Telegraphos II shared-buffer floorplan (fig. 6): 4×4 switch,
/// 16-bit words, 8 stages of 256×16 compiled SRAM, 0.7 µm standard cell.
pub fn telegraphos_ii_floorplan() -> FloorplanReport {
    let tech = Technology::es2_070_std_cell();
    let stages = 8;
    FloorplanReport {
        sram_mm2: stages as f64 * sram_macro_area_mm2(256, 16, &tech),
        peripheral_mm2: peripheral_area_mm2(Organization::Pipelined, 4, 16, 256, &tech),
        routing_mm2: routing_area_mm2(4, 16, &tech),
    }
}

/// §5.1 / fig. 9: first-order width/height comparison of input buffering
/// vs shared buffering, in abstract cell units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Comparison {
    /// Total buffer-array width, both designs (units of bit cells): `2nw`.
    pub buffer_width_cells: u64,
    /// Crossbar/datapath block dimensions, both designs: `2nw × nw`
    /// (length in cell units × height in wire units).
    pub crossbar_block: (u64, u64),
    /// Number of crossbar-sized blocks. Input buffering: the crossbar
    /// plus the (non-FIFO) scheduler with its control wiring — §5.1: "the
    /// single crossbar and the scheduler of the input buffers occupy
    /// comparable area with the two crossbars of the shared buffer".
    /// Shared buffering: input datapath + output datapath.
    pub blocks_input: u32,
    /// See `blocks_input`.
    pub blocks_shared: u32,
    /// Buffer heights for equal loss (cells): `H_i` for input buffering,
    /// `H_s` for shared — `H_s < H_i` is the shared buffer's net win.
    pub h_input: u64,
    /// See `h_input`.
    pub h_shared: u64,
}

impl Fig9Comparison {
    /// Build the comparison for an `n×n`, `w`-bit switch, given the
    /// per-port buffer depths that equalize loss (from an E3-style
    /// simulation; \[HlKa88\] gives shared ≈ 5.4/port vs input-side ≈
    /// 80/port at 16×16, load 0.8, loss 10⁻³).
    pub fn new(n: usize, w: u32, h_input: u64, h_shared: u64) -> Self {
        let width = 2 * (n as u64) * (w as u64);
        Fig9Comparison {
            buffer_width_cells: width,
            crossbar_block: (width, (n as u64) * (w as u64)),
            blocks_input: 2,
            blocks_shared: 2,
            h_input,
            h_shared,
        }
    }

    /// Buffer storage area in cell units: `width × height`.
    pub fn buffer_area_input(&self) -> u64 {
        self.buffer_width_cells * self.h_input
    }

    /// See [`Fig9Comparison::buffer_area_input`].
    pub fn buffer_area_shared(&self) -> u64 {
        self.buffer_width_cells * self.h_shared
    }

    /// Total area including crossbar blocks, in cell units (one wire unit
    /// treated as `wire_per_cell` cell units).
    pub fn total_area(&self, shared: bool, wire_per_cell: f64) -> f64 {
        let (len, wires) = self.crossbar_block;
        let blk = len as f64 * wires as f64 * wire_per_cell;
        let (blocks, buf) = if shared {
            (self.blocks_shared, self.buffer_area_shared())
        } else {
            (self.blocks_input, self.buffer_area_input())
        };
        buf as f64 + blocks as f64 * blk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telegraphos_ii_matches_paper_accounting() {
        // §4.2: SRAM 11, peripherals 15, routing 5.5 → total 32 mm².
        let fp = telegraphos_ii_floorplan();
        assert!(
            (fp.sram_mm2 - 11.0).abs() / 11.0 < 0.05,
            "sram {}",
            fp.sram_mm2
        );
        assert!(
            (fp.peripheral_mm2 - 15.0).abs() / 15.0 < 0.10,
            "periph {}",
            fp.peripheral_mm2
        );
        assert!(
            (fp.routing_mm2 - 5.5).abs() / 5.5 < 0.10,
            "routing {}",
            fp.routing_mm2
        );
        assert!(
            (fp.total_mm2() - 32.0).abs() / 32.0 < 0.08,
            "total {}",
            fp.total_mm2()
        );
    }

    #[test]
    fn buffer_fits_on_the_telegraphos_ii_die() {
        // The chip is 8.5 × 8.5 mm² = 72.25 mm²; the buffer's 32 mm² is
        // under half the die, as fig. 6 shows.
        let fp = telegraphos_ii_floorplan();
        assert!(fp.total_mm2() < 72.25 / 2.0 + 5.0);
    }

    #[test]
    fn fig9_same_width_fewer_bits_for_shared() {
        // §5.1: both designs have total width 2nw; H_s < H_i means the
        // shared buffer wins on storage area outright, and its extra
        // crossbar block is offset by the input design's scheduler.
        let cmp = Fig9Comparison::new(16, 16, 80, 11);
        assert_eq!(cmp.buffer_width_cells, 512);
        assert_eq!(cmp.crossbar_block, (512, 256));
        assert!(cmp.buffer_area_shared() < cmp.buffer_area_input());
        let ratio = cmp.buffer_area_input() as f64 / cmp.buffer_area_shared() as f64;
        assert!(ratio > 5.0, "storage ratio {ratio}");
    }

    #[test]
    fn fig9_total_area_shared_wins_when_heights_differ_enough() {
        let cmp = Fig9Comparison::new(16, 16, 80, 11);
        let shared = cmp.total_area(true, 0.5);
        let input = cmp.total_area(false, 0.5);
        assert!(
            shared < input,
            "shared {shared} must beat input {input} at [HlKa88] sizing"
        );
    }
}
