//! Peripheral-datapath area: the circuits *around* the buffer banks.
//!
//! §3.2's claim (iii): the pipelined memory "significantly reduces the
//! size of the peripheral circuitry relative to the wide memory". The
//! peripheral datapath comprises the input latch rows, the output register
//! row, the tristate bus drivers, and the control-signal pipeline
//! registers (the address decoders live inside the SRAM macros; see
//! `sram`). This module counts those bits per organization and converts
//! to area through the technology's calibrated per-bit constant.

use crate::tech::Technology;

/// Buffer organization whose peripherals are being costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// The paper's pipelined memory (fig. 4): single input latch row,
    /// shared output register row, no cut-through hardware.
    Pipelined,
    /// Wide memory (fig. 3, \[KaSC91\]): double input buffering, per-output
    /// double buffering, plus the cut-through bypass crossbar.
    Wide,
    /// PRIZMA-style interleaving (\[DeEI95\]): router and selector
    /// crossbars of size `n × M` each (costed in `compare`; the
    /// latch/register complement here is like the pipelined case).
    Interleaved,
}

/// Bit-level census of one organization's peripheral datapath for an
/// `n×n` switch with `w`-bit words and `S = 2n` stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeripheralBreakdown {
    /// Input latch bits (`n·S·w`; doubled for wide memory).
    pub latch_bits: u64,
    /// Output register bits (`S·w` shared row; wide memory uses per-link
    /// double rows, `2·n·S·w`... modeled as `2·S·w` per the \[KaSC91\]
    /// floorplan where rows are shared per bus).
    pub outreg_bits: u64,
    /// Tristate driver bits on the stage buses (`S·(n+1)·w`: n input
    /// drivers and one output tap per stage).
    pub driver_bits: u64,
    /// Control pipeline register bits (`S · (addr + linkid + op)`).
    pub ctrl_bits: u64,
    /// Extra crossbar driver bits for wide-memory cut-through
    /// (`n²·w`, the bypass paths of fig. 3).
    pub crossbar_bits: u64,
}

impl PeripheralBreakdown {
    /// Census for the given geometry.
    pub fn new(org: Organization, n: usize, w: u32, slots: usize) -> Self {
        let s = 2 * n as u64;
        let (n, w) = (n as u64, w as u64);
        let addr_bits = (usize::BITS - (slots.max(2) - 1).leading_zeros()) as u64;
        let linkid_bits = (usize::BITS - (n.max(2) as usize - 1).leading_zeros()) as u64;
        let ctrl_word = addr_bits + linkid_bits + 2; // + op/valid bits
        match org {
            Organization::Pipelined | Organization::Interleaved => PeripheralBreakdown {
                latch_bits: n * s * w,
                outreg_bits: s * w,
                driver_bits: s * (n + 1) * w,
                ctrl_bits: s * ctrl_word,
                crossbar_bits: 0,
            },
            Organization::Wide => PeripheralBreakdown {
                // Double input buffering (§3.2: "double buffering is
                // needed on the input side").
                latch_bits: 2 * n * s * w,
                outreg_bits: 2 * s * w,
                driver_bits: s * (n + 1) * w,
                ctrl_bits: s * ctrl_word,
                // Cut-through bypass: one extra row of tristate drivers
                // tapping the input buses (fig. 3); the dominant crossbar
                // cost is wiring, which lands in the routing estimate.
                crossbar_bits: n * w,
            },
        }
    }

    /// Total datapath bits.
    pub fn total_bits(&self) -> u64 {
        self.latch_bits + self.outreg_bits + self.driver_bits + self.ctrl_bits + self.crossbar_bits
    }
}

/// Peripheral area in mm² for an organization at a geometry, in a
/// technology.
pub fn peripheral_area_mm2(
    org: Organization,
    n: usize,
    w: u32,
    slots: usize,
    tech: &Technology,
) -> f64 {
    let bits = PeripheralBreakdown::new(org, n, w, slots).total_bits();
    bits as f64 * tech.datapath_bit_um2 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    #[test]
    fn telegraphos_iii_peripheral_is_about_9_mm2() {
        // §4.4: "The peripheral circuitry area is just about 9 mm²".
        let a = peripheral_area_mm2(
            Organization::Pipelined,
            8,
            16,
            256,
            &Technology::es2_100_full_custom(),
        );
        assert!((a - 9.0).abs() / 9.0 < 0.10, "model {a} mm² vs paper 9 mm²");
    }

    #[test]
    fn std_cell_4x4_is_about_41_mm2() {
        // §4.4: "41 mm² that the standard-cell design would occupy in
        // this 1.0 µm technology for the half-sized (4×4) switch".
        let a = peripheral_area_mm2(
            Organization::Pipelined,
            4,
            16,
            256,
            &Technology::es2_100_std_cell(),
        );
        assert!(
            (a - 41.0).abs() / 41.0 < 0.10,
            "model {a} mm² vs paper 41 mm²"
        );
    }

    #[test]
    fn full_custom_factor_4_5_with_twice_the_links() {
        // §4.4: full-custom 8×8 peripherals are ≈ 4.5× smaller than the
        // std-cell 4×4 ones (at twice the links).
        let fc8 = peripheral_area_mm2(
            Organization::Pipelined,
            8,
            16,
            256,
            &Technology::es2_100_full_custom(),
        );
        let sc4 = peripheral_area_mm2(
            Organization::Pipelined,
            4,
            16,
            256,
            &Technology::es2_100_std_cell(),
        );
        let ratio = sc4 / fc8;
        assert!((ratio - 4.5).abs() < 0.5, "ratio {ratio} vs paper 4.5");
    }

    #[test]
    fn std_cell_8x8_about_18x_full_custom() {
        // §4.4: "an 8×8 standard-cell design would be about 18 times
        // larger than this same configuration in full-custom." The paper
        // assumes exact quadratic growth; the census has a small linear
        // component, so the tolerance is wider here.
        let fc8 = peripheral_area_mm2(
            Organization::Pipelined,
            8,
            16,
            256,
            &Technology::es2_100_full_custom(),
        );
        let sc8 = peripheral_area_mm2(
            Organization::Pipelined,
            8,
            16,
            256,
            &Technology::es2_100_std_cell(),
        );
        let ratio = sc8 / fc8;
        assert!((13.0..=20.0).contains(&ratio), "ratio {ratio} vs paper ≈18");
    }

    #[test]
    fn peripheral_area_grows_quadratically_in_links() {
        // §4.4: "the peripheral circuit area grows with the square of the
        // number of links".
        let t = Technology::es2_100_full_custom();
        let a4 = peripheral_area_mm2(Organization::Pipelined, 4, 16, 256, &t);
        let a8 = peripheral_area_mm2(Organization::Pipelined, 8, 16, 256, &t);
        let a16 = peripheral_area_mm2(Organization::Pipelined, 16, 16, 256, &t);
        let g1 = a8 / a4;
        let g2 = a16 / a8;
        assert!((3.2..=4.2).contains(&g1), "4→8 growth {g1}");
        assert!((3.2..=4.2).contains(&g2), "8→16 growth {g2}");
    }

    #[test]
    fn wide_needs_more_peripheral_bits_than_pipelined() {
        let p = PeripheralBreakdown::new(Organization::Pipelined, 8, 16, 256);
        let w = PeripheralBreakdown::new(Organization::Wide, 8, 16, 256);
        assert_eq!(w.latch_bits, 2 * p.latch_bits, "double input buffering");
        assert!(w.crossbar_bits > 0, "cut-through crossbar present");
        assert!(w.total_bits() > p.total_bits());
    }

    #[test]
    fn breakdown_census_matches_geometry() {
        let p = PeripheralBreakdown::new(Organization::Pipelined, 8, 16, 256);
        assert_eq!(p.latch_bits, 8 * 16 * 16); // n · S · w = 2048
        assert_eq!(p.outreg_bits, 16 * 16); // S · w = 256
        assert_eq!(p.driver_bits, 16 * 9 * 16); // S · (n+1) · w = 2304
        assert_eq!(p.ctrl_bits, 16 * (8 + 3 + 2)); // S · ctrl word = 208
    }
}
