//! Word-line RC delay — the §4.3 / fig. 7 argument.
//!
//! A distributed RC line of length `L` with per-unit resistance `r` and
//! capacitance `c` has Elmore delay `≈ 0.38·r·c·L²` (50 % point). The
//! quadratic dependence is why the wide memory's `2n·w`-cell word lines
//! are slow, why real wide memories split into blocks with repeated
//! decoders — "thus arriving at a floorplan and area similar to fig. 7(a)"
//! — and why the pipelined memory, whose word lines span only one stage's
//! `w` cells, is inherently faster. Fig. 7(b)'s further optimization
//! replaces per-stage decoders with decoded-address pipeline registers,
//! which §4.4 measures at 2.3× smaller than the decoder they replace.

/// A distributed RC line.
#[derive(Debug, Clone, Copy)]
pub struct RcLine {
    /// Resistance per µm, Ω.
    pub r_ohm_per_um: f64,
    /// Capacitance per µm, fF.
    pub c_ff_per_um: f64,
}

impl RcLine {
    /// Elmore 50 % delay of a line of `length_um`, in ns:
    /// `0.38 · (r·L) · (c·L)`, with r·c in Ω·fF = 10⁻¹⁵ s.
    pub fn elmore_ns(&self, length_um: f64) -> f64 {
        0.38 * self.r_ohm_per_um * self.c_ff_per_um * length_um * length_um * 1e-6
    }

    /// Delay when the line is split into `k` equal blocks, each driven by
    /// its own (re)decoder or pipeline register: the RC term shrinks by
    /// `k²`, at the cost of `k` decoders.
    pub fn split_elmore_ns(&self, length_um: f64, k: usize) -> f64 {
        assert!(k >= 1);
        self.elmore_ns(length_um / k as f64)
    }
}

/// Word-line delay of a buffer organization: a line spanning
/// `cells_spanned` storage cells of `cell_pitch_um`.
pub fn word_line_delay_ns(cells_spanned: usize, cell_pitch_um: f64, line: RcLine) -> f64 {
    line.elmore_ns(cells_spanned as f64 * cell_pitch_um)
}

/// Relative area of the fig. 7(b) decoded-address pipeline register vs
/// the address decoder it replaces (§4.4: the register is 2.3× smaller).
///
/// Returned as `(decoder_units, register_units)` for a bank of `rows`
/// word lines: a decoder is modeled at 2.3 units per row, the register
/// file at 1.0 unit per row.
pub fn decoder_vs_pipe_register(rows: usize) -> (f64, f64) {
    let register = rows as f64;
    (2.3 * register, register)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: RcLine = RcLine {
        r_ohm_per_um: 25.0,
        c_ff_per_um: 0.22,
    };

    #[test]
    fn delay_quadratic_in_length() {
        let d1 = LINE.elmore_ns(100.0);
        let d2 = LINE.elmore_ns(200.0);
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_word_lines_much_faster_than_wide() {
        // Telegraphos III geometry: pipelined word line spans w = 16
        // cells; an unsplit wide-memory line spans 2n·w = 256 cells.
        let pitch = 16.0;
        let pipelined = word_line_delay_ns(16, pitch, LINE);
        let wide = word_line_delay_ns(256, pitch, LINE);
        assert!((wide / pipelined - 256.0).abs() < 1e-6, "(2n)² = 256×");
        // And the wide line is material against a 16 ns cycle, the
        // pipelined one is not.
        assert!(wide > 16.0, "unsplit wide word line: {wide} ns");
        assert!(pipelined < 0.5, "pipelined word line: {pipelined} ns");
    }

    #[test]
    fn splitting_recovers_speed_at_decoder_cost() {
        // Splitting the wide line into 16 blocks (= one per stage) makes
        // its delay equal to the pipelined organization's — "arriving at
        // a floorplan and area similar to figure 7(a)".
        let pitch = 16.0;
        let wide_split = LINE.split_elmore_ns(256.0 * pitch, 16);
        let pipelined = word_line_delay_ns(16, pitch, LINE);
        assert!((wide_split - pipelined).abs() < 1e-12);
    }

    #[test]
    fn pipe_register_2_3x_smaller_than_decoder() {
        let (dec, reg) = decoder_vs_pipe_register(256);
        assert!((dec / reg - 2.3).abs() < 1e-9);
    }
}
