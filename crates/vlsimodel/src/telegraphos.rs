//! The three Telegraphos prototypes (§4) as configuration records.

use crate::periph::{peripheral_area_mm2, Organization};
use crate::tech::{Style, Technology};

/// One Telegraphos prototype with its paper-reported parameters and the
/// model's derived metrics.
#[derive(Debug, Clone)]
pub struct Prototype {
    /// Name as used in the paper.
    pub name: &'static str,
    /// Ports per side (n of the n×n crossbar).
    pub n: usize,
    /// On-chip link width in bits (= word width).
    pub word_bits: u32,
    /// Pipeline stages (= packet size in words).
    pub stages: usize,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// Buffer slots (packets).
    pub slots: usize,
    /// Technology.
    pub tech: Technology,
}

impl Prototype {
    /// Telegraphos I (§4.1): 4×4 FPGA prototype, 8-bit links at
    /// 13.3 MHz (107 Mb/s), 8-byte packets, 8 SRAM-chip stages.
    pub fn telegraphos_i() -> Self {
        Prototype {
            name: "Telegraphos I",
            n: 4,
            word_bits: 8,
            stages: 8,
            packet_bytes: 8,
            slots: 256,
            tech: Technology::xilinx_3000(),
        }
    }

    /// Telegraphos II (§4.2): 4×4 standard-cell ASIC, 16-bit on-chip
    /// words at 40 ns (400 Mb/s), 16-byte packets, eight 256×16 SRAMs.
    pub fn telegraphos_ii() -> Self {
        Prototype {
            name: "Telegraphos II",
            n: 4,
            word_bits: 16,
            stages: 8,
            packet_bytes: 16,
            slots: 256,
            tech: Technology::es2_070_std_cell(),
        }
    }

    /// Telegraphos III (§4.4): 8×8 full-custom buffer, 16 stages, 256
    /// packets × 256 bits = 64 Kbit, 16 ns worst case → 1 Gb/s/link.
    pub fn telegraphos_iii() -> Self {
        Prototype {
            name: "Telegraphos III",
            n: 8,
            word_bits: 16,
            stages: 16,
            packet_bytes: 32,
            slots: 256,
            tech: Technology::es2_100_full_custom(),
        }
    }

    /// Buffer capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        (self.stages * self.slots) as u64 * self.word_bits as u64
    }

    /// Worst-case per-link rate, Gb/s.
    pub fn link_gbps_worst(&self) -> f64 {
        self.tech.link_gbps(self.word_bits, true)
    }

    /// Typical per-link rate, Gb/s.
    pub fn link_gbps_typ(&self) -> f64 {
        self.tech.link_gbps(self.word_bits, false)
    }

    /// Aggregate buffer throughput, Gb/s (all stages busy every cycle).
    pub fn aggregate_gbps_worst(&self) -> f64 {
        self.stages as f64 * self.word_bits as f64 / self.tech.cycle_worst_ns
    }

    /// Peripheral datapath area, mm² (NaN for the FPGA prototype).
    pub fn peripheral_mm2(&self) -> f64 {
        if matches!(self.tech.style, Style::Fpga) {
            f64::NAN
        } else {
            peripheral_area_mm2(
                Organization::Pipelined,
                self.n,
                self.word_bits,
                self.slots,
                &self.tech,
            )
        }
    }

    /// Consistency: packet bytes must equal stages × word bytes.
    pub fn validate(&self) {
        assert_eq!(
            self.packet_bytes as usize,
            self.stages * (self.word_bits as usize / 8),
            "{}: packet size must equal stages × word bytes",
            self.name
        );
        assert_eq!(self.stages, 2 * self.n, "{}: stages = 2n", self.name);
    }
}

/// All three prototypes (E8's table).
pub fn telegraphos_table() -> Vec<Prototype> {
    vec![
        Prototype::telegraphos_i(),
        Prototype::telegraphos_ii(),
        Prototype::telegraphos_iii(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prototypes_internally_consistent() {
        for p in telegraphos_table() {
            p.validate();
        }
    }

    #[test]
    fn telegraphos_iii_headline_numbers() {
        let p = Prototype::telegraphos_iii();
        assert_eq!(p.capacity_bits(), 65_536, "64 Kbit central buffer");
        assert!((p.link_gbps_worst() - 1.0).abs() < 1e-9, "1 Gb/s worst");
        assert!((p.link_gbps_typ() - 1.6).abs() < 1e-9, "1.6 Gb/s typical");
        // Fig. 8 caption: "16 Gbps, 64 Kbit pipelined buffer" —
        // aggregate = 16 links' worth at 1 Gb/s.
        assert!((p.aggregate_gbps_worst() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn telegraphos_ii_and_i_rates() {
        let p2 = Prototype::telegraphos_ii();
        assert!((p2.link_gbps_worst() - 0.4).abs() < 1e-9, "400 Mb/s");
        let p1 = Prototype::telegraphos_i();
        assert!((p1.link_gbps_worst() - 0.1067).abs() < 0.001, "107 Mb/s");
        assert!(p1.peripheral_mm2().is_nan(), "no area model for FPGAs");
    }

    #[test]
    fn packet_sizes_match_paper() {
        assert_eq!(Prototype::telegraphos_i().packet_bytes, 8);
        assert_eq!(Prototype::telegraphos_ii().packet_bytes, 16);
        // Telegraphos III: 256-bit packets = 32 bytes.
        assert_eq!(Prototype::telegraphos_iii().packet_bytes, 32);
    }
}
