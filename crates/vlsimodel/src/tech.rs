//! Technology presets.
//!
//! The paper's prototypes use the ES2 (European Silicon Structures)
//! processes: 0.7 µm standard cell for Telegraphos II, 1.0 µm full custom
//! for Telegraphos III; Telegraphos I is Xilinx 3000-series FPGAs. Each
//! preset carries the handful of per-technology constants the area and
//! delay models need. Constants are calibrated against the paper's
//! reported silicon figures (see the field docs); this is a first-order
//! model, not a PDK.

/// Implementation style — the paper's §4.4 comparison axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Standard cells, automatic place and route.
    StandardCell,
    /// Full-custom layout with datapath/wiring overlap, dynamic latches,
    /// precharged buses (§4.4's list of where the gains come from).
    FullCustom,
    /// FPGA (Telegraphos I).
    Fpga,
}

/// A fabrication technology for the cost model.
#[derive(Debug, Clone)]
pub struct Technology {
    /// Human-readable name.
    pub name: &'static str,
    /// Minimum drawn feature size, µm.
    pub feature_um: f64,
    /// Layout style the constants were calibrated for.
    pub style: Style,
    /// Effective area of one peripheral-datapath bit (latch/driver/mux
    /// with its share of wiring), µm². Calibrated: the 4×4, 16-bit
    /// standard-cell datapath = 41 mm² (§4.4) gives ≈ 29 600 µm²/bit for
    /// 1.0 µm standard cell; the 8×8 full-custom datapath = 9 mm² gives
    /// ≈ 1 870 µm²/bit — the paper's "4.5× smaller at twice the links".
    pub datapath_bit_um2: f64,
    /// Area of one bit of a compiled/custom SRAM macro *including* its
    /// amortized decoder and sense overhead, µm². Calibrated: the
    /// Telegraphos II 256×16 compiled SRAM is 1.5 × 0.9 mm² = 1.35 mm²
    /// for 4096 bits → ≈ 330 µm²/bit at 0.7 µm.
    pub sram_bit_um2: f64,
    /// Wire pitch (metal, µm) for routing-area estimates.
    pub wire_pitch_um: f64,
    /// Word-line resistance per µm of a polysilicon/strapped line, Ω/µm.
    pub r_ohm_per_um: f64,
    /// Word-line capacitance per µm, fF/µm.
    pub c_ff_per_um: f64,
    /// Pitch of one storage cell along a word line, µm.
    pub cell_pitch_um: f64,
    /// Worst-case clock cycle achievable by the pipelined buffer, ns
    /// (§4: 75 ns Telegraphos I, 40 ns on-chip Telegraphos II, 16 ns
    /// Telegraphos III worst case).
    pub cycle_worst_ns: f64,
    /// Typical-case clock cycle, ns (10 ns for Telegraphos III).
    pub cycle_typ_ns: f64,
}

impl Technology {
    /// ES2 0.7 µm CMOS standard cell — Telegraphos II (§4.2).
    pub fn es2_070_std_cell() -> Self {
        Technology {
            name: "ES2 0.7um std-cell",
            feature_um: 0.7,
            style: Style::StandardCell,
            // Telegraphos II peripherals: 15 mm² for the 4×4, 16-bit
            // datapath (1384 datapath bits; see `periph`): ≈ 10 840.
            datapath_bit_um2: 10_840.0,
            sram_bit_um2: 330.0,
            wire_pitch_um: 2.1,
            r_ohm_per_um: 20.0,
            c_ff_per_um: 0.20,
            cell_pitch_um: 12.0,
            cycle_worst_ns: 40.0,
            cycle_typ_ns: 25.0,
        }
    }

    /// ES2 1.0 µm CMOS standard cell — the hypothetical §4.4 comparison
    /// point ("41 mm² that the standard-cell design would occupy in this
    /// 1.0 µm technology for the half-sized 4×4 switch").
    pub fn es2_100_std_cell() -> Self {
        Technology {
            name: "ES2 1.0um std-cell",
            feature_um: 1.0,
            style: Style::StandardCell,
            // 41 mm² / 1384 bits ≈ 29 600 µm²/bit.
            datapath_bit_um2: 29_600.0,
            sram_bit_um2: 620.0,
            wire_pitch_um: 3.0,
            r_ohm_per_um: 25.0,
            c_ff_per_um: 0.22,
            cell_pitch_um: 16.0,
            cycle_worst_ns: 40.0,
            cycle_typ_ns: 25.0,
        }
    }

    /// ES2 1.0 µm CMOS full custom — Telegraphos III (§4.4): one poly,
    /// two metal, 5 V.
    pub fn es2_100_full_custom() -> Self {
        Technology {
            name: "ES2 1.0um full-custom",
            feature_um: 1.0,
            style: Style::FullCustom,
            // 9 mm² / 4816 bits ≈ 1 870 µm²/bit (dynamic latches,
            // precharged buses, wiring overlapped with active area).
            datapath_bit_um2: 1_870.0,
            sram_bit_um2: 400.0,
            wire_pitch_um: 3.0,
            r_ohm_per_um: 25.0,
            c_ff_per_um: 0.22,
            cell_pitch_um: 16.0,
            cycle_worst_ns: 16.0,
            cycle_typ_ns: 10.0,
        }
    }

    /// Xilinx 3000-series FPGA boards — Telegraphos I (§4.1). Area
    /// figures are not meaningful; only timing is used.
    pub fn xilinx_3000() -> Self {
        Technology {
            name: "Xilinx 3000 FPGA",
            feature_um: 1.0,
            style: Style::Fpga,
            datapath_bit_um2: f64::NAN,
            sram_bit_um2: f64::NAN,
            wire_pitch_um: f64::NAN,
            r_ohm_per_um: f64::NAN,
            c_ff_per_um: f64::NAN,
            cell_pitch_um: f64::NAN,
            cycle_worst_ns: 75.0, // 13.3 MHz
            cycle_typ_ns: 75.0,
        }
    }

    /// Per-link throughput in Gb/s given `wires` on-chip wires per link
    /// (one bit per wire per cycle).
    pub fn link_gbps(&self, wires: u32, worst_case: bool) -> f64 {
        let cycle = if worst_case {
            self.cycle_worst_ns
        } else {
            self.cycle_typ_ns
        };
        wires as f64 / cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telegraphos_iii_link_rates() {
        // §4.4: "8 incoming and 8 outgoing links, with worst-case
        // throughput of 1 Gbps/link (1.6 Gbps/link typical) … each link
        // consists of 16 wires".
        let t = Technology::es2_100_full_custom();
        assert!((t.link_gbps(16, true) - 1.0).abs() < 1e-9);
        assert!((t.link_gbps(16, false) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn telegraphos_ii_link_rate() {
        // §4.2: 400 Mb/s — 16 bits / 40 ns on-chip.
        let t = Technology::es2_070_std_cell();
        assert!((t.link_gbps(16, true) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn telegraphos_i_link_rate() {
        // §4.1: 8 bits at 13.3 MHz ≈ 107 Mb/s.
        let t = Technology::xilinx_3000();
        let gbps = t.link_gbps(8, true);
        assert!((gbps - 0.1067).abs() < 0.001, "{gbps}");
    }

    #[test]
    fn full_custom_datapath_denser_than_std_cell() {
        let fc = Technology::es2_100_full_custom();
        let sc = Technology::es2_100_std_cell();
        let ratio = sc.datapath_bit_um2 / fc.datapath_bit_um2;
        assert!(ratio > 10.0, "per-bit density ratio {ratio}");
    }
}
