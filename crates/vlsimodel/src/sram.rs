//! SRAM macro area.

use crate::tech::Technology;

/// Area of one SRAM macro of `words × bits`, mm², including its amortized
/// decoder and sense circuitry (the calibration point is the Telegraphos
/// II compiled 256×16 macro: 1.5 × 0.9 mm² = 1.35 mm² at 0.7 µm).
pub fn sram_macro_area_mm2(words: usize, bits: u32, tech: &Technology) -> f64 {
    (words as f64) * (bits as f64) * tech.sram_bit_um2 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    #[test]
    fn telegraphos_ii_macro_is_1_35_mm2() {
        // §4.2: "Each memory stage, DB0 to DB7, is a 256×16 compiled SRAM
        // of size 1.5 × 0.9 mm²."
        let a = sram_macro_area_mm2(256, 16, &Technology::es2_070_std_cell());
        assert!((a - 1.35).abs() / 1.35 < 0.01, "{a}");
    }

    #[test]
    fn eight_macros_are_about_11_mm2() {
        // §4.2: "All eight SRAM megacells occupy 11 mm²."
        let a = 8.0 * sram_macro_area_mm2(256, 16, &Technology::es2_070_std_cell());
        assert!((a - 11.0).abs() / 11.0 < 0.05, "{a}");
    }

    #[test]
    fn area_scales_with_bits() {
        let t = Technology::es2_070_std_cell();
        let a1 = sram_macro_area_mm2(256, 16, &t);
        let a2 = sram_macro_area_mm2(512, 16, &t);
        assert!((a2 / a1 - 2.0).abs() < 1e-9);
    }
}
