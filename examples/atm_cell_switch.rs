//! ATM cell switching — the paper's §2.3/§3.5 motivation scenario.
//!
//! "We believe that high-speed networks will converge to using fixed-size
//! packets, cells, or flits … ATM, with 53-byte fixed-size cells, is a
//! big step in that direction." This example sizes a 16×16 shared-buffer
//! ATM switch: 53-byte cells pad to a 64-byte quantum (two 32-byte
//! quanta, or one with the §3.5 half-size trick), and the buffer pool is
//! dimensioned by simulation for a 10⁻³ loss target under bursty traffic.
//!
//! ```sh
//! cargo run --release --example atm_cell_switch
//! ```

use telegraphos::baselines::harness::run;
use telegraphos::baselines::shared::SharedBufferSwitch;
use telegraphos::traffic::{Bernoulli, BurstyOnOff, DestDist};
use telegraphos::vlsimodel::quantum::quantum_table;

fn main() {
    let n = 16;
    let load = 0.8;
    println!("ATM switching scenario: {n}x{n} shared-buffer switch, load {load}\n");

    // §3.5 arithmetic: what buffer geometry does an ATM cell imply?
    println!("Quantum arithmetic (5 ns memory cycle, 16+16 links):");
    for row in quantum_table(&[32, 64], 5.0, 16) {
        println!(
            "  {:>3}-byte quantum -> {:>4}-bit buffer, {:>6.1} Gb/s aggregate, {:>5.2} Gb/s/link",
            row.quantum_bytes, row.buffer_width_bits, row.aggregate_gbps, row.per_link_gbps
        );
    }
    println!(
        "  A 53-byte ATM cell pads to 64 bytes = two 32-byte quanta\n\
         (or one, using the §3.5 dual-memory half-quantum trick).\n"
    );

    // Dimension the shared pool: smallest capacity with loss <= 1e-3
    // under smooth traffic, then see what bursts do to it.
    let slots_run = 400_000u64;
    let mut lo = 8usize;
    let mut hi = 512usize;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let mut sw = SharedBufferSwitch::new(n, Some(mid));
        let mut src = Bernoulli::new(n, load, DestDist::uniform(n), 42);
        let stats = run(&mut sw, &mut src, slots_run, slots_run / 10);
        if stats.loss <= 1e-3 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let pool = hi;
    println!(
        "Smooth (Bernoulli) traffic: pool of {pool} cells reaches loss <= 1e-3 \
         ({:.1} cells/port — [HlKa88] reports 5.4).",
        pool as f64 / n as f64
    );

    // Same pool under bursty traffic.
    for mean_burst in [4.0, 16.0] {
        let mut sw = SharedBufferSwitch::new(n, Some(pool));
        let mut src = BurstyOnOff::new(n, load, mean_burst, DestDist::uniform(n), 43);
        let stats = run(&mut sw, &mut src, slots_run, slots_run / 10);
        println!(
            "Bursty traffic (mean burst {mean_burst:>4.0} cells): same pool loses {:.2e} \
             (p99 latency {} slots) — bursts are what buffers are for.",
            stats.loss,
            stats.p99_latency.unwrap_or(0)
        );
    }

    // And the headline comparison: the same pool partitioned per output.
    let per_out = pool / n;
    let mut sw = telegraphos::baselines::output_queued::OutputQueuedSwitch::new(n, Some(per_out));
    let mut src = Bernoulli::new(n, load, DestDist::uniform(n), 42);
    let stats = run(&mut sw, &mut src, slots_run, slots_run / 10);
    println!(
        "\nThe same {pool} cells partitioned {per_out}/output (output queueing) \
         lose {:.2e} at the same load —\nsharing the pool is the paper's §2.2 argument.",
        stats.loss
    );
}
