//! A gigabit LAN fabric for clustered workstations — the Telegraphos
//! use case from the paper's introduction ("gigabit local area networks
//! for high performance distributed computing").
//!
//! 64 workstations connect through an omega network of 2×2 shared-buffer
//! switch elements (6 stages); link-level credit flow control paces the
//! hosts. We measure end-to-end latency and fabric throughput, then show
//! what credits buy: zero loss with bounded element buffers.
//!
//! ```sh
//! cargo run --release --example lan_fabric
//! ```

use telegraphos::netsim::multistage::OmegaNetwork;
use telegraphos::simkernel::cell::Cell;
use telegraphos::simkernel::SplitMix64;
use telegraphos::switch_core::credit::CreditedInput;

fn main() {
    let k = 2;
    let stages = 6;
    let hosts = 64;
    println!("LAN fabric: {hosts} hosts, omega network of {stages} stages of {k}x{k} shared-buffer elements\n");

    // Unpaced hosts against bounded element pools: elements drop.
    let loss_unpaced = run_fabric(k, stages, hosts, 0.6, None, 20_000);
    // Credit-paced hosts: each host may have at most `credits` cells in
    // flight; returned when its cell is delivered.
    let loss_paced = run_fabric(k, stages, hosts, 0.6, Some(4), 20_000);
    println!(
        "\nWith bounded element pools (4 cells): unpaced hosts lose {:.2e} of cells;\n\
         credit-paced hosts (4 end-to-end credits each) lose {:.2e} — roughly two\n\
         orders of magnitude less, at the price of pacing sources below fabric\n\
         capacity. (Telegraphos uses per-LINK credits sized to the downstream\n\
         buffer, which make loss impossible by construction — demonstrated on a\n\
         single switch in tests/credit_flow.rs; end-to-end credits shown here are\n\
         the weaker, cheaper variant.)",
        loss_unpaced, loss_paced
    );
}

/// Returns the measured loss fraction.
fn run_fabric(
    k: usize,
    stages: usize,
    hosts: usize,
    load: f64,
    credits: Option<u32>,
    slots: u64,
) -> f64 {
    let mut net = OmegaNetwork::new(k, stages, Some(4));
    assert_eq!(net.terminals(), hosts);
    let mut rng = SplitMix64::new(7);
    let mut senders: Vec<CreditedInput<usize>> = (0..hosts)
        .map(|_| CreditedInput::new(credits.unwrap_or(u32::MAX), 0))
        .collect();
    let mut offered = 0u64;
    let mut next_id = 0u64;
    let mut in_flight_src: Vec<u64> = vec![0; hosts]; // cells in fabric per source
    let mut delivered_seen = 0usize;

    for now in 0..slots {
        // Hosts generate demand; the credited sender releases it.
        let mut arr: Vec<Option<Cell>> = vec![None; hosts];
        for (h, sender) in senders.iter_mut().enumerate() {
            if rng.chance(load) {
                offered += 1;
                sender.offer(rng.below_usize(hosts));
            }
            if let Some(dst) = sender.poll(now) {
                next_id += 1;
                arr[h] = Some(Cell::new(next_id, h, dst, now));
                in_flight_src[h] += 1;
            }
        }
        net.tick(now, &arr);
        // Return credits for cells delivered this slot.
        for c in &net.delivered()[delivered_seen..] {
            senders[c.src.index()].return_credit(now);
            in_flight_src[c.src.index()] -= 1;
        }
        delivered_seen = net.delivered().len();
    }
    // Drain.
    for now in slots..slots + 500 {
        net.tick(now, &vec![None; hosts]);
    }
    let delivered = net.delivered().len() as u64;
    let dropped = net.dropped();
    println!(
        "  load {load}, credits {:?}: offered {offered}, delivered {delivered}, \
         dropped-in-fabric {dropped}, mean latency {:.1} slots, backlog at hosts {}",
        credits,
        net.mean_latency(),
        senders.iter().map(|s| s.backlog()).sum::<usize>(),
    );
    dropped as f64 / (delivered + dropped).max(1) as f64
}
