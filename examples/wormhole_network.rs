//! Wormhole-routed multicomputer network — the §2.1 \[Dally90\] scenario.
//!
//! A 16×16 mesh carrying 20-flit messages through routers with 16 flits
//! of buffering per link: with one virtual-channel lane the network
//! saturates far below capacity (blocked worms kill every channel they
//! sit on); adding lanes recovers throughput.
//!
//! ```sh
//! cargo run --release --example wormhole_network
//! ```

use telegraphos::netsim::wormhole::{MeshConfig, WormholeMesh};

fn main() {
    let k = 16;
    println!(
        "Wormhole mesh {k}x{k}, 20-flit messages, 16 flits of buffering per link\n\
         (paper §2.1 quoting [Dally90 fig 8])\n"
    );
    println!(
        "{:>5}  {:>14}  {:>16}  {:>9}  {:>9}",
        "lanes", "offered f/n/c", "delivered f/n/c", "cap frac", "latency"
    );
    let cap = 4.0 / k as f64; // DOR capacity bound, flits/node/cycle
    for lanes in [1usize, 2, 4] {
        for frac in [0.3, 0.6, 1.2] {
            let rate = frac * cap / 20.0;
            let mut mesh = WormholeMesh::new(MeshConfig::dally(k, lanes, rate, 2026));
            mesh.run(25_000);
            println!(
                "{:>5}  {:>14.4}  {:>16.4}  {:>9.2}  {:>9.0}",
                lanes,
                rate * 20.0,
                mesh.flits_per_node_cycle(),
                mesh.flits_per_node_cycle() / cap,
                mesh.mean_latency()
            );
        }
        println!();
    }
    println!(
        "One lane saturates well below the dimension-order capacity bound; more\n\
         lanes let worms pass blocked worms. This is why §2.1 says bursty traffic\n\
         larger than the buffers makes input-queued networks saturate early — and\n\
         why buffering organization matters."
    );
}
