//! A Telegraphos network in miniature: three word-level pipelined
//! switches in a chain, virtual circuits set up hop by hop, packets cut
//! through every switch — the whole §3 story composed into a system.
//!
//! ```sh
//! cargo run --release --example telegraphos_network
//! ```

use telegraphos::netsim::rtlnet::{host_packet, RtlChain};
use telegraphos::simkernel::cell::Packet;
use telegraphos::switch_core::config::SwitchConfig;

fn main() {
    let cfg = SwitchConfig::symmetric(2, 16);
    let s = cfg.stages();
    let hops = 3;
    let mut chain = RtlChain::new(cfg, hops, 64);
    println!("Chain of {hops} pipelined 2x2 switches ({s}-word packets), registered wires.\n");

    // Two circuits: one zig-zagging (labels 5→9→13→21), one straight
    // (labels 30→31→32→33).
    chain.install_circuit(&[5, 9, 13, 21], &[1, 0, 1]);
    chain.install_circuit(&[30, 31, 32, 33], &[0, 1, 0]);
    println!("Circuit A: label 5 -> 9 -> 13 -> 21, path out1/out0/out1");
    println!("Circuit B: label 30 -> 31 -> 32 -> 33, path out0/out1/out0\n");

    // Launch one packet per circuit, simultaneously.
    let pa = host_packet(100, 5, s);
    let pb = host_packet(200, 30, s);
    for k in 0..s {
        chain.tick(&[Some(pa[k]), Some(pb[k])]);
    }
    let mut guard = 0;
    while !chain.is_quiescent() && guard < 500 {
        chain.tick(&[None, None]);
        guard += 1;
    }
    for d in chain.take_deliveries() {
        let intact = d.words[1..]
            .iter()
            .enumerate()
            .all(|(i, &w)| w == Packet::payload_word(d.id, i + 1));
        println!(
            "packet {:>3}: egress link {} with label {:>2}, head word at cycle {:>2} \
             (3 hops x ~2-cycle cut-through + 2 wire cycles), payload intact: {intact}",
            d.id, d.egress, d.vc, d.head_cycle
        );
        assert!(intact);
    }
    println!(
        "\nEvery hop swapped the label (fig. 6's RT), every buffer cut the packet\n\
         through in ~2 cycles (fig. 4/5), and no word was stored twice anywhere —\n\
         the pipelined shared buffer doing what the paper built it for."
    );
}
