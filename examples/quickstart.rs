//! Quickstart: build the paper's switch, push packets through it, watch
//! the waves.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use telegraphos::simkernel::cell::Packet;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch, StageCtrl};
use telegraphos::telemetry::TelemetryConfig;

fn main() {
    // A 4×4 switch: 8 pipeline stages, 8-word packets — the Telegraphos
    // I/II geometry.
    let cfg = SwitchConfig::symmetric(4, 64);
    let stages = cfg.stages();
    let n = cfg.n_in;
    println!(
        "Pipelined-memory shared-buffer switch: {n}x{n}, {stages} stages, \
         {} packet slots, {} Kbit buffer\n",
        cfg.slots,
        cfg.capacity_bits() / 1024
    );
    let (mut sw, rec) = PipelinedSwitch::with_telemetry(cfg, &TelemetryConfig::unbounded());
    let rec = rec.expect("unbounded() always enables a recorder");

    // Three packets: two collide on output 2, one has output 0 to itself.
    let packets = [
        Packet::synth(101, 0, 2, stages, 0),
        Packet::synth(102, 1, 2, stages, 0),
        Packet::synth(103, 3, 0, stages, 0),
    ];
    let mut col = OutputCollector::new(n, stages);

    for t in 0..5 * stages {
        let mut wire = vec![None; n];
        for p in &packets {
            if t < stages {
                wire[p.src.index()] = Some(p.words[t]);
            }
        }
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
        // Show the wave sweeping the banks for the first few cycles.
        if now <= 6 {
            let ctrls: Vec<String> = sw
                .stage_controls()
                .iter()
                .map(|c| match c {
                    StageCtrl::Nop => ".".into(),
                    StageCtrl::Write { .. } => "W".into(),
                    StageCtrl::Read { .. } => "R".into(),
                    StageCtrl::Fused { .. } => "F".into(),
                })
                .collect();
            println!("cycle {now:>2}: stages [{}]", ctrls.join(" "));
        }
    }

    println!("\nEvent trace (probe stream):\n{}", rec.render());
    let delivered = col.take();
    println!("Delivered {} packets:", delivered.len());
    for d in &delivered {
        println!(
            "  id {:>4} on {}: first word at cycle {:>2} (cut-through latency {}), \
             tail at {:>2}, payload intact: {}",
            d.id,
            d.output,
            d.first_cycle,
            d.first_cycle, // header arrived at 0 for all three
            d.last_cycle,
            d.verify_payload()
        );
    }
    let ctr = sw.counters();
    println!(
        "\nCounters: arrived {}, departed {}, fused cut-throughs {}, \
         drops {}, latch overruns {} (must be 0)",
        ctr.arrived, ctr.departed, ctr.fused_reads, ctr.dropped_buffer_full, ctr.latch_overruns
    );
    assert_eq!(ctr.latch_overruns, 0);
    assert!(delivered.iter().all(|d| d.verify_payload()));
    println!(
        "\nOK — see `cargo run -p bench-harness --bin expt -- --list` for the paper's experiments."
    );
}
