//! The Telegraphos chip family (§4): run each prototype's geometry on
//! the RTL model and print the silicon story next to it.
//!
//! ```sh
//! cargo run --release --example telegraphos_chip
//! ```

use telegraphos::simkernel::SplitMix64;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::traffic::{DestDist, PacketFeeder};
use telegraphos::vlsimodel::floorplan::telegraphos_ii_floorplan;
use telegraphos::vlsimodel::telegraphos::telegraphos_table;

fn main() {
    println!("The Telegraphos prototype family (paper §4)\n");
    for p in telegraphos_table() {
        p.validate();
        println!("== {} ==", p.name);
        println!(
            "  {}x{} crossbar, {}-bit words, {} stages, {}-byte packets, {} slots \
             ({} Kbit buffer)",
            p.n,
            p.n,
            p.word_bits,
            p.stages,
            p.packet_bytes,
            p.slots,
            p.capacity_bits() / 1024
        );
        println!(
            "  technology: {} — {:.0} ns worst-case cycle -> {:.3} Gb/s per link \
             ({:.1} Gb/s aggregate)",
            p.tech.name,
            p.tech.cycle_worst_ns,
            p.link_gbps_worst(),
            p.aggregate_gbps_worst()
        );
        let periph = p.peripheral_mm2();
        if periph.is_nan() {
            println!("  peripheral area: n/a (FPGA prototype: 4x Xilinx 3164 + 1x 3130)");
        } else {
            println!("  peripheral datapath area (model): {periph:.1} mm2");
        }

        // Functional shakeout of the geometry at 90 % load.
        let mut cfg = SwitchConfig::symmetric(p.n, 64);
        cfg.word_bits = p.word_bits;
        let s = cfg.stages();
        let n = cfg.n_in;
        let mut sw = PipelinedSwitch::new(cfg);
        let mut feeders: Vec<PacketFeeder> = (0..n)
            .map(|i| PacketFeeder::random(i, s, 0.9, DestDist::uniform(n), 17, n as u64))
            .collect();
        let mut col = OutputCollector::new(n, s);
        let mut wire = vec![None; n];
        for _ in 0..20_000 {
            for (i, f) in feeders.iter_mut().enumerate() {
                wire[i] = f.tick(sw.now());
            }
            let now = sw.now();
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        let delivered = col.take();
        let intact = delivered.iter().all(|d| d.verify_payload());
        let ctr = sw.counters();
        println!(
            "  RTL shakeout @ 90% load: {} packets delivered, payloads intact: {intact}, \
             fused cut-throughs: {}, latch overruns: {} (must be 0)\n",
            delivered.len(),
            ctr.fused_reads,
            ctr.latch_overruns
        );
        assert!(intact);
        assert_eq!(ctr.latch_overruns, 0);
    }

    let fp = telegraphos_ii_floorplan();
    println!(
        "Telegraphos II floorplan (fig 6): SRAM {:.1} + peripherals {:.1} + routing {:.1} \
         = {:.1} mm2 (paper: 11 + 15 + 5.5 = 32)",
        fp.sram_mm2,
        fp.peripheral_mm2,
        fp.routing_mm2,
        fp.total_mm2()
    );
    let _ = SplitMix64::new(0);
}
