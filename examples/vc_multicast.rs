//! Virtual circuits, label swapping, multicast, and weighted service —
//! the full Telegraphos feature set on top of the pipelined buffer.
//!
//! A two-switch chain forwards a virtual circuit with per-hop label
//! swapping (the RT block of fig. 6); a multicast packet fans out of one
//! stored copy; and a WRR multiplexer (\[KaSC91\]) arbitrates an output
//! between two flows at 3:1 weights.
//!
//! ```sh
//! cargo run --example vc_multicast
//! ```

use telegraphos::simkernel::cell::Packet;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::vcroute::{decode_delivery, synth_vc_packet, TranslatedSwitch};
use telegraphos::switch_core::wrr::WrrMux;

fn main() {
    // ---------------------------------------------------------------
    // 1. Virtual-circuit forwarding across two switches.
    // ---------------------------------------------------------------
    println!("1. Virtual circuit across two switches (label swapping)\n");
    let mut sw_a = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
    let mut sw_b = TranslatedSwitch::new(SwitchConfig::symmetric(2, 8), 64);
    sw_a.rt().install(3, 1, 11); // at A: vc 3 → output 1, relabel 11
    sw_b.rt().install(11, 0, 42); // at B: vc 11 → output 0, relabel 42
    let s = sw_a.inner().config().stages();

    let hop = |sw: &mut TranslatedSwitch, words: &[u64]| {
        let mut col = OutputCollector::new(2, s);
        for w in words.iter().take(s) {
            let now = sw.inner().now();
            let out = sw.tick(&[Some(*w), None]);
            col.observe(now, out);
        }
        while !sw.inner().is_quiescent() {
            let now = sw.inner().now();
            let out = sw.tick(&[None, None]);
            col.observe(now, out);
        }
        col.take().remove(0)
    };

    let p = synth_vc_packet(7, 0, 3, s, 0);
    let d1 = hop(&mut sw_a, &p.words);
    let (vc1, id1) = decode_delivery(&d1);
    println!(
        "   hop A: arrived vc 3 -> departed output {} with label {vc1} (id {id1})",
        d1.output
    );
    let mut w2 = d1.words.clone();
    w2[0] = telegraphos::switch_core::vcroute::encode_header_vc(vc1, id1);
    let d2 = hop(&mut sw_b, &w2);
    let (vc2, id2) = decode_delivery(&d2);
    println!(
        "   hop B: arrived vc {vc1} -> departed output {} with label {vc2} (id {id2})",
        d2.output
    );
    assert_eq!((vc2, id2), (42, 7));
    println!("   circuit forwarded end-to-end, payload intact.\n");

    // ---------------------------------------------------------------
    // 2. Multicast: one stored copy, three read waves.
    // ---------------------------------------------------------------
    println!("2. Multicast from one buffered copy\n");
    let cfg = SwitchConfig::symmetric(4, 16);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let mc = Packet::synth_multicast(9, 0, 0b1101, s, 0);
    let mut col = OutputCollector::new(4, s);
    for k in 0..s {
        let now = sw.now();
        let out = sw.tick(&[Some(mc.words[k]), None, None, None]);
        col.observe(now, out);
    }
    while !sw.is_quiescent() {
        let now = sw.now();
        let out = sw.tick(&[None; 4]);
        col.observe(now, out);
    }
    for d in col.take() {
        println!(
            "   copy on output {}: first word at cycle {}, payload intact: {}",
            d.output,
            d.first_cycle,
            d.verify_payload()
        );
    }
    println!("   buffer held ONE copy; the slot freed at the last read initiation.\n");

    // ---------------------------------------------------------------
    // 3. WRR cell multiplexing at an output ([KaSC91]).
    // ---------------------------------------------------------------
    println!("3. Weighted round-robin output multiplexing (weights 3:1)\n");
    let mut mux: WrrMux<&'static str> = WrrMux::new(&[3, 1]);
    let mut served = [0u32; 2];
    for slot in 0..16 {
        for f in 0..2 {
            if mux.queue_len(f) < 2 {
                mux.enqueue(f, if f == 0 { "A" } else { "B" });
            }
        }
        if let Some((f, tag)) = mux.dequeue() {
            served[f] += 1;
            print!("{tag}");
            let _ = slot;
        }
    }
    println!(
        "\n   flow A served {} slots, flow B {} — 3:1 as configured.",
        served[0], served[1]
    );
}
